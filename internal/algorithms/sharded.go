package algorithms

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// This file ports the two flagship operational algorithms onto the
// sharded giant-host plane (model.ShardedEngine). The round cores are
// the exact functions the flat engine runs — coleVishkinWordStep and
// proposalStep over the WordSender surface — so a P=1 sharded run is
// byte-identical to the unsharded run by construction, and the
// differential tests pin it. What changes is the bookkeeping around
// the run: identifiers come from an IDFunc instead of a slice,
// randomness is drawn inside the sequential Init sweep instead of a
// pre-drawn table, and results are extracted streaming (histograms
// and counts, never an n-length column), so 10^8-node hosts stay
// within per-shard bounded memory.

// ShardedCVResult reports a Cole–Vishkin run on the sharded plane.
// Per-node colours and membership stay inside the engine (decode them
// with CVState under VisitStates); the result carries the aggregates
// the experiments plot.
type ShardedCVResult struct {
	// Rounds is the number of rounds actually executed.
	Rounds int
	// MISSize counts members among surviving nodes.
	MISSize int64
	// Colors is the final colour histogram over surviving nodes.
	Colors [3]int64
	// Report summarises injected faults (nil on clean runs).
	Report *model.FaultReport
	// Violations and Uncovered are the survivor-safety counts of
	// CVSurvivorSafetySharded. On a clean run both are checked to be 0
	// before the result is returned.
	Violations int64
	Uncovered  int64
}

// CVState decodes a packed Cole–Vishkin state word into its colour
// and membership — the VisitStates companion for streaming result
// consumers.
func CVState(w uint64) (color int, inMIS bool) {
	return int(w & cvColorMask), w&cvMISBit != 0
}

// ColeVishkinMISSharded runs Cole–Vishkin MIS on a sharded engine
// whose source is a consistently oriented cycle. ids assigns the
// global identifiers (model.SeededIDs needs no materialised table)
// and maxID bounds the id space — for SeededIDs over n nodes that is
// n-1. The clean guarantees are enforced: a colour outside {0,1,2} or
// a survivor-safety failure is an error, exactly as on the flat
// plane.
func ColeVishkinMISSharded(se *model.ShardedEngine, ids model.IDFunc, maxID int) (*ShardedCVResult, error) {
	steps, last, err := cvPlanSharded(se, ids, maxID)
	if err != nil {
		return nil, err
	}
	rounds, err := se.Run(ids, coleVishkinShardedAlgo(steps, last), last+2)
	if err != nil {
		return nil, fmt.Errorf("algorithms: sharded Cole–Vishkin: %w", err)
	}
	res := &ShardedCVResult{Rounds: rounds}
	var bad int64 = -1
	se.VisitStates(func(v int64, w uint64) {
		c, member := CVState(w)
		if c < 0 || c > 2 {
			if bad < 0 {
				bad = v
			}
			return
		}
		res.Colors[c]++
		if member {
			res.MISSize++
		}
	})
	if bad >= 0 {
		c, _ := CVState(se.StateAt(bad))
		return nil, fmt.Errorf("algorithms: node %d ended with colour %d", bad, c)
	}
	res.Violations, res.Uncovered = CVSurvivorSafetySharded(se, nil)
	if res.Violations != 0 || res.Uncovered != 0 {
		return nil, fmt.Errorf("algorithms: sharded Cole–Vishkin: clean run not an MIS (%d violations, %d uncovered)",
			res.Violations, res.Uncovered)
	}
	return res, nil
}

// ColeVishkinMISShardedFaulty is ColeVishkinMISSharded under a fault
// schedule: the run degrades instead of failing, and the result
// reports the survivor-safety counts (see ColeVishkinMISFaulty).
func ColeVishkinMISShardedFaulty(se *model.ShardedEngine, ids model.IDFunc, maxID int, sched model.Schedule) (*ShardedCVResult, error) {
	steps, last, err := cvPlanSharded(se, ids, maxID)
	if err != nil {
		return nil, err
	}
	rounds, rep, err := se.RunFaulty(ids, coleVishkinShardedAlgo(steps, last), last+2+faultSlack, sched)
	if err != nil {
		return nil, fmt.Errorf("algorithms: sharded faulty Cole–Vishkin: %w", err)
	}
	res := &ShardedCVResult{Rounds: rounds, Report: rep}
	se.VisitStates(func(v int64, w uint64) {
		if rep.CrashedNode(int(v)) {
			return
		}
		c, member := CVState(w)
		if c >= 0 && c <= 2 {
			res.Colors[c]++
		}
		if member {
			res.MISSize++
		}
	})
	res.Violations, res.Uncovered = CVSurvivorSafetySharded(se, func(v int64) bool {
		return rep.CrashedNode(int(v))
	})
	return res, nil
}

// cvPlanSharded validates a sharded Cole–Vishkin instance: the source
// must be a consistently oriented cycle (out- and in-degree 1
// everywhere) and the id bound must fit the colour lane.
func cvPlanSharded(se *model.ShardedEngine, ids model.IDFunc, maxID int) (steps, last int, err error) {
	if ids == nil {
		return 0, 0, fmt.Errorf("algorithms: sharded Cole–Vishkin needs identifiers (see model.SeededIDs)")
	}
	if maxID < 0 {
		return 0, 0, fmt.Errorf("algorithms: negative id bound %d", maxID)
	}
	if uint64(maxID) > cvColorMask {
		return 0, 0, fmt.Errorf("algorithms: id %d exceeds the %d-bit colour lane", maxID, cvColorBits)
	}
	src := se.Source()
	for v, n := int64(0), src.N(); v < n; v++ {
		if out, in := src.Degree(v); out != 1 || in != 1 {
			return 0, 0, fmt.Errorf("algorithms: Cole–Vishkin needs a consistently oriented cycle")
		}
	}
	steps = cvSteps(maxID)
	return steps, steps + 6, nil
}

// coleVishkinShardedAlgo is the Cole–Vishkin pipeline on the sharded
// word lane — the same step core as coleVishkinWordAlgo.
func coleVishkinShardedAlgo(steps, last int) model.ShardedWordAlgo {
	step := coleVishkinWordStep(steps, last)
	return model.ShardedWordAlgo{
		Init: func(v int64, info model.NodeInfo) uint64 { return cvInit(info) },
		Step: step,
		Out: func(state *uint64) model.Output {
			return model.Output{Member: *state&cvMISBit != 0}
		},
	}
}

// CVSurvivorSafetySharded is CVSurvivorSafety streaming over a shard
// source: violations counts surviving adjacent member pairs,
// uncovered counts surviving non-members with no surviving member
// neighbour. A nil crashed predicate means every node survived.
func CVSurvivorSafetySharded(se *model.ShardedEngine, crashed func(int64) bool) (violations, uncovered int64) {
	src := se.Source()
	var outS, inS []model.ShardArc
	for v, n := int64(0), src.N(); v < n; v++ {
		if crashed != nil && crashed(v) {
			continue
		}
		_, member := CVState(se.StateAt(v))
		outS, inS = src.AppendArcs(v, outS[:0], inS[:0])
		covered := false
		for _, arcs := range [2][]model.ShardArc{outS, inS} {
			for _, a := range arcs {
				u := a.To
				if crashed != nil && crashed(u) {
					continue
				}
				if _, um := CVState(se.StateAt(u)); um {
					covered = true
					if member && u > v {
						violations++
					}
				}
			}
		}
		if !member && !covered {
			uncovered++
		}
	}
	return violations, uncovered
}

// ShardedMatchingResult reports a randomized-matching run on the
// sharded plane. The selected edges stay inside the engine (stream
// them with VisitShardedMatching); the result carries the aggregates.
type ShardedMatchingResult struct {
	// Proposals counts nodes that drew a proposal (non-isolated).
	Proposals int64
	// Matched counts distinct selected edges among survivors.
	Matched int64
	// Conflicts counts surviving vertices incident to more than one
	// selected edge — verified 0 under every schedule, not assumed.
	Conflicts int64
	// Report summarises injected faults (nil on clean runs).
	Report *model.FaultReport
}

// RandomizedMatchingSharded runs the one-round mutual-proposal
// matching on a sharded engine. Proposals are drawn from rng inside
// the engine's sequential global-order Init sweep — the same stream,
// in the same order, as the flat drawProposals — and each node picks
// uniformly among its neighbours in ascending-id order, so for the
// same seed the selected edge set equals the flat run's. The host
// must be simple (at most one arc between any node pair).
func RandomizedMatchingSharded(se *model.ShardedEngine, rng *rand.Rand) (*ShardedMatchingResult, error) {
	if _, err := se.Run(nil, proposalShardedAlgo(se.Source(), rng), 3); err != nil {
		return nil, fmt.Errorf("algorithms: sharded randomized matching: %w", err)
	}
	res := &ShardedMatchingResult{}
	res.Proposals, res.Matched, res.Conflicts = shardedMatchingTally(se, nil, nil)
	return res, nil
}

// RandomizedMatchingShardedFaulty is RandomizedMatchingSharded under
// a fault schedule: losses shrink the matching, never corrupt it, and
// edges with a crashed endpoint are excluded (see
// RandomizedMatchingFaulty).
func RandomizedMatchingShardedFaulty(se *model.ShardedEngine, rng *rand.Rand, sched model.Schedule) (*ShardedMatchingResult, error) {
	_, rep, err := se.RunFaulty(nil, proposalShardedAlgo(se.Source(), rng), 3+faultSlack, sched)
	if err != nil {
		return nil, fmt.Errorf("algorithms: sharded faulty randomized matching: %w", err)
	}
	res := &ShardedMatchingResult{Report: rep}
	res.Proposals, res.Matched, res.Conflicts = shardedMatchingTally(se, func(v int64) bool {
		return rep.CrashedNode(int(v))
	}, nil)
	return res, nil
}

// VisitShardedMatching streams the selected matching edges as (u, v)
// pairs with u < v, each exactly once, excluding edges with a crashed
// endpoint (nil crashed means every node survived).
func VisitShardedMatching(se *model.ShardedEngine, crashed func(int64) bool, visit func(u, v int64)) {
	shardedMatchingTally(se, crashed, visit)
}

// proposalShardedAlgo draws each node's proposal inside Init (the
// engine guarantees Init runs sequentially in increasing global node
// order, so the rng stream is schedule- and shard-independent) and
// exchanges proposals with the shared proposalStep core. The drawn
// neighbour is the rng.Intn(d)-th in ascending-id order, matching the
// flat drawProposals over sorted CSR adjacency.
func proposalShardedAlgo(src model.ShardSource, rng *rand.Rand) model.ShardedWordAlgo {
	var outS, inS []model.ShardArc
	var ts, sorted []int64
	return model.ShardedWordAlgo{
		Init: func(v int64, info model.NodeInfo) uint64 {
			out, in := src.Degree(v)
			d := out + in
			if d == 0 {
				return 0
			}
			outS, inS = src.AppendArcs(v, outS[:0], inS[:0])
			ts = mergeTargets(ts[:0], outS, inS)
			sorted = append(sorted[:0], ts...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			u := sorted[rng.Intn(d)]
			for slot, t := range ts {
				if t == u {
					return uint64(slot) | mPropose
				}
			}
			panic(fmt.Sprintf("algorithms: no arc between neighbours %d and %d", v, u))
		},
		Step: proposalStep,
		Out:  func(*uint64) model.Output { return model.Output{} },
	}
}

// mergeTargets merges label-sorted out- and in-arc rows into slot
// (letter) order — the engine's merge, out before in on equal labels
// — recording each slot's peer.
func mergeTargets(ts []int64, out, in []model.ShardArc) []int64 {
	i, j := 0, 0
	for i < len(out) || j < len(in) {
		if i < len(out) && (j >= len(in) || out[i].Label <= in[j].Label) {
			ts = append(ts, out[i].To)
			i++
		} else {
			ts = append(ts, in[j].To)
			j++
		}
	}
	return ts
}

// shardedMatchingTally streams the matching out of the engine state:
// proposals, distinct surviving selected edges (each counted at its
// smaller endpoint; the larger endpoint defers when its partner
// already selected the same edge) and the per-vertex conflict check.
// Per node it re-derives the slot-order peer row from the source —
// the price of never materialising an n-length proposal table.
func shardedMatchingTally(se *model.ShardedEngine, crashed func(int64) bool, visit func(u, v int64)) (proposals, matched, conflicts int64) {
	src := se.Source()
	var outS, inS []model.ShardArc
	var ts []int64
	peer := func(v int64, slot int32) int64 {
		outS, inS = src.AppendArcs(v, outS[:0], inS[:0])
		ts = mergeTargets(ts[:0], outS, inS)
		return ts[slot]
	}
	// selected reports whether u selected the edge {u, w}: u proposed
	// and matched on an arc whose peer is w.
	selected := func(u, w int64) bool {
		s := se.StateAt(u)
		return s&mMatched != 0 && peer(u, int32(s&mSlotMask)) == w
	}
	var outV, inV []model.ShardArc
	var tsV []int64
	se.VisitStates(func(v int64, s uint64) {
		if s&mPropose != 0 {
			proposals++
		}
		dead := crashed != nil && crashed(v)
		if dead {
			return
		}
		outV, inV = src.AppendArcs(v, outV[:0], inV[:0])
		tsV = mergeTargets(tsV[:0], outV, inV)
		// Incident selected edges of v: its own selection plus any
		// neighbour's selection of v. The protocol keeps this at most
		// one edge; count to verify rather than assume.
		incident := int64(0)
		var own int64 = -1
		if s&mMatched != 0 {
			own = tsV[s&mSlotMask]
			if crashed == nil || !crashed(own) {
				incident++
				if v < own {
					matched++
					if visit != nil {
						visit(v, own)
					}
				} else if !selected(own, v) {
					// The partner never selected this edge (its own
					// direction was lost), so the smaller endpoint did
					// not count it — count it here.
					matched++
					if visit != nil {
						visit(own, v)
					}
				}
			}
		}
		for _, u := range tsV {
			if u == own || (crashed != nil && crashed(u)) {
				continue
			}
			if selected(u, v) {
				incident++
			}
		}
		if incident > 1 {
			conflicts++
		}
	})
	return proposals, matched, conflicts
}
