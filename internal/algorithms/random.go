package algorithms

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/view"
)

// RandomizedMatching is the Section 6.5 demonstration: equipping nodes
// with private randomness strictly increases the power of local
// algorithms. Deterministically, no constant-factor matching
// approximation exists in any of ID/OI/PO (Section 1.4, certified by
// the lower-bound engine on symmetric cycles, where every feasible
// deterministic behaviour outputs the empty matching). With
// randomness, one round of mutual proposals already finds a matching
// of expected size Ω(m/Δ²): each node proposes to a uniformly random
// neighbour, and an edge joins the matching when its endpoints propose
// to each other.
//
// The execution is genuinely operational: the proposals are drawn
// sequentially up front (so the rng stream is schedule-independent)
// and then exchanged in one synchronous round on the message-plane
// Engine — each node sends along the arc to its chosen neighbour and
// an edge is matched exactly when both endpoints hear a proposal on
// the arc they proposed along.
//
// The returned solution is a valid matching. Each edge {u, v} is
// matched with probability 1/(deg(u)·deg(v)), so the expected size is
// at least m/Δ²; on d-regular graphs E|M| >= n/(2d) against
// ν(G) <= n/2 — expected ratio at most d, a constant for bounded
// degree, which no deterministic local algorithm can achieve.
func RandomizedMatching(h *model.Host, rng *rand.Rand) *model.Solution {
	return randomizedMatchingOn(model.NewEngine(h), h, rng)
}

// proposeState is a node's state in the mutual-proposal round.
type proposeState struct {
	// letter names the arc to the proposed neighbour.
	letter view.Letter
	// propose is false on isolated nodes.
	propose bool
	// sent records that the proposal actually left the node (a node
	// transiently down in round 0 never sends, so it cannot match).
	sent bool
	// matched reports a mutual proposal.
	matched bool
}

// drawProposals pre-draws every node's proposal sequentially, keeping
// the rng stream off the parallel rounds (and off the fault schedule:
// the same seed proposes identically under every profile).
func drawProposals(h *model.Host, rng *rand.Rand) ([]int, []proposeState) {
	g := h.G
	n := g.N()
	proposal := make([]int, n)
	states := make([]proposeState, n)
	for v := 0; v < n; v++ {
		proposal[v] = -1
		if d := g.Degree(v); d > 0 {
			proposal[v] = int(g.Neighbors(v)[rng.Intn(d)])
			states[v] = proposeState{letter: letterTo(h, v, proposal[v]), propose: true}
		}
	}
	return proposal, states
}

// proposalAlgo is the one-round mutual-proposal exchange over
// pre-drawn states. A node matches when a proposal arrives on the arc
// it itself proposed (and sent) along; on a faulty plane one or both
// directions may be lost, but the selected edge set stays a matching
// because each node only ever selects the single edge it proposed.
func proposalAlgo(states []proposeState) model.EngineAlgo {
	nextInit := 0
	return model.EngineAlgo{
		// Init is called sequentially in node order: it hands out the
		// pre-drawn states, keeping every random bit off the parallel
		// rounds.
		Init: func(model.NodeInfo) any {
			s := &states[nextInit]
			nextInit++
			return s
		},
		Step: func(state any, round int, inbox []model.Msg, out *model.Outbox) (any, bool) {
			s := state.(*proposeState)
			if round == 0 {
				if s.propose {
					out.Send(s.letter, nil) // arrival alone carries "I propose to you"
					s.sent = true
				}
				return s, false
			}
			if s.propose && s.sent {
				for i := range inbox {
					if inbox[i].L == s.letter {
						s.matched = true
					}
				}
			}
			return s, true
		},
		Out: func(any) model.Output { return model.Output{} },
	}
}

// randomizedMatchingOn is RandomizedMatching on a caller-provided
// engine, so repeated trials reuse one message plane.
func randomizedMatchingOn(e *model.Engine, h *model.Host, rng *rand.Rand) *model.Solution {
	n := h.G.N()
	proposal, states := drawProposals(h, rng)
	if _, _, err := e.RunStates(nil, proposalAlgo(states), 3); err != nil {
		// Unreachable: every letter was resolved from a real arc and
		// each node sends at most once.
		panic(fmt.Sprintf("algorithms: randomized matching round: %v", err))
	}
	sol := model.NewSolution(model.EdgeKind, n)
	for v := 0; v < n; v++ {
		if states[v].matched {
			sol.Edges[graph.NewEdge(v, proposal[v])] = true
		}
	}
	return sol
}

// letterTo returns the letter naming the arc between v and its
// neighbour u at v.
func letterTo(h *model.Host, v, u int) view.Letter {
	for _, a := range h.D.Out(v) {
		if a.To == u {
			return view.Letter{Label: a.Label}
		}
	}
	for _, a := range h.D.In(v) {
		if a.To == u {
			return view.Letter{Label: a.Label, In: true}
		}
	}
	panic(fmt.Sprintf("algorithms: no arc between neighbours %d and %d", v, u))
}

// RandomizedMatchingTrials runs the one-round proposal matching many
// times and reports the average matching size — the in-expectation
// guarantee made measurable. All trials share one engine, so only the
// first pays for the message plane.
func RandomizedMatchingTrials(h *model.Host, trials int, rng *rand.Rand) float64 {
	e := model.NewEngine(h)
	total := 0
	for i := 0; i < trials; i++ {
		total += randomizedMatchingOn(e, h, rng).Size()
	}
	return float64(total) / float64(trials)
}
