package algorithms

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
)

// RandomizedMatching is the Section 6.5 demonstration: equipping nodes
// with private randomness strictly increases the power of local
// algorithms. Deterministically, no constant-factor matching
// approximation exists in any of ID/OI/PO (Section 1.4, certified by
// the lower-bound engine on symmetric cycles, where every feasible
// deterministic behaviour outputs the empty matching). With
// randomness, one round of mutual proposals already finds a matching
// of expected size Ω(m/Δ²): each node proposes to a uniformly random
// neighbour, and an edge joins the matching when its endpoints propose
// to each other.
//
// The returned solution is a valid matching. Each edge {u, v} is
// matched with probability 1/(deg(u)·deg(v)), so the expected size is
// at least m/Δ²; on d-regular graphs E|M| >= n/(2d) against
// ν(G) <= n/2 — expected ratio at most d, a constant for bounded
// degree, which no deterministic local algorithm can achieve.
func RandomizedMatching(h *model.Host, rng *rand.Rand) *model.Solution {
	g := h.G
	n := g.N()
	proposal := make([]int, n)
	for v := 0; v < n; v++ {
		proposal[v] = -1
		if d := g.Degree(v); d > 0 {
			proposal[v] = int(g.Neighbors(v)[rng.Intn(d)])
		}
	}
	sol := model.NewSolution(model.EdgeKind, n)
	for v := 0; v < n; v++ {
		u := proposal[v]
		if u > v && proposal[u] == v {
			sol.Edges[graph.NewEdge(v, u)] = true
		}
	}
	return sol
}

// RandomizedMatchingTrials runs the one-round proposal matching many
// times and reports the average matching size — the in-expectation
// guarantee made measurable.
func RandomizedMatchingTrials(h *model.Host, trials int, rng *rand.Rand) float64 {
	total := 0
	for i := 0; i < trials; i++ {
		total += RandomizedMatching(h, rng).Size()
	}
	return float64(total) / float64(trials)
}
