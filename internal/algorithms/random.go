package algorithms

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/view"
)

// RandomizedMatching is the Section 6.5 demonstration: equipping nodes
// with private randomness strictly increases the power of local
// algorithms. Deterministically, no constant-factor matching
// approximation exists in any of ID/OI/PO (Section 1.4, certified by
// the lower-bound engine on symmetric cycles, where every feasible
// deterministic behaviour outputs the empty matching). With
// randomness, one round of mutual proposals already finds a matching
// of expected size Ω(m/Δ²): each node proposes to a uniformly random
// neighbour, and an edge joins the matching when its endpoints propose
// to each other.
//
// The execution is genuinely operational: the proposals are drawn
// sequentially up front (so the rng stream is schedule-independent)
// and then exchanged in one synchronous round on the typed word lane
// of the message-plane Engine — each node sends along the arc to its
// chosen neighbour and an edge is matched exactly when both endpoints
// hear a proposal on the arc they proposed along.
//
// The returned solution is a valid matching. Each edge {u, v} is
// matched with probability 1/(deg(u)·deg(v)), so the expected size is
// at least m/Δ²; on d-regular graphs E|M| >= n/(2d) against
// ν(G) <= n/2 — expected ratio at most d, a constant for bounded
// degree, which no deterministic local algorithm can achieve.
func RandomizedMatching(h *model.Host, rng *rand.Rand) *model.Solution {
	return randomizedMatchingOn(model.NewWordEngine(h), h, rng)
}

// proposeState is a node's pre-drawn proposal; the protocol state
// proper (chosen slot, sent, matched) is packed into the engine's
// uint64 state column, see the m* layout below.
type proposeState struct {
	// letter names the arc to the proposed neighbour.
	letter view.Letter
	// propose is false on isolated nodes.
	propose bool
}

// Word layout of the proposal protocol's packed state:
//
//	bits 0..31  the proposed arc's local slot index
//	bit 32      propose (unset on isolated nodes: state stays 0)
//	bit 33      sent — the proposal actually left the node (a node
//	            transiently down in round 0 never sends, so it
//	            cannot match)
//	bit 34      matched — a mutual proposal
const (
	mSlotMask = uint64(1)<<32 - 1
	mPropose  = uint64(1) << 32
	mSent     = uint64(1) << 33
	mMatched  = uint64(1) << 34
)

// drawProposals pre-draws every node's proposal sequentially, keeping
// the rng stream off the parallel rounds (and off the fault schedule:
// the same seed proposes identically under every profile).
func drawProposals(h *model.Host, rng *rand.Rand) ([]int, []proposeState) {
	g := h.G
	n := g.N()
	proposal := make([]int, n)
	states := make([]proposeState, n)
	for v := 0; v < n; v++ {
		proposal[v] = -1
		if d := g.Degree(v); d > 0 {
			proposal[v] = int(g.Neighbors(v)[rng.Intn(d)])
			states[v] = proposeState{letter: letterTo(h, v, proposal[v]), propose: true}
		}
	}
	return proposal, states
}

// proposalWordAlgo is the one-round mutual-proposal exchange over
// pre-drawn proposals, on the typed word lane. A node matches when a
// proposal arrives on the slot it itself proposed (and sent) along;
// on a faulty plane one or both directions may be lost, but the
// selected edge set stays a matching because each node only ever
// selects the single edge it proposed. The payload word is
// irrelevant — arrival alone carries "I propose to you".
func proposalWordAlgo(states []proposeState) model.WordAlgo {
	return model.WordAlgo{
		// Init indexes the pre-drawn table by node, keeping every
		// random bit off the parallel rounds, and converts the drawn
		// letter to its local slot in the letter-sorted row.
		Init: func(v int, info model.NodeInfo) uint64 {
			if !states[v].propose {
				return 0
			}
			return uint64(slotOf(info.Letters, states[v].letter)) | mPropose
		},
		Step: func(state *uint64, round int, inbox []model.WordMsg, out *model.Outbox) bool {
			return proposalStep(state, round, inbox, out)
		},
		Out: func(*uint64) model.Output { return model.Output{} },
	}
}

// proposalStep is the exchange round over the abstract send surface —
// shared by the flat WordAlgo above and the sharded port.
func proposalStep(state *uint64, round int, inbox []model.WordMsg, out model.WordSender) bool {
	s := *state
	if round == 0 {
		if s&mPropose != 0 {
			out.SendWord(int(s&mSlotMask), 1)
			*state = s | mSent
		}
		return false
	}
	if s&mPropose != 0 && s&mSent != 0 {
		slot := int32(s & mSlotMask)
		for _, m := range inbox {
			if m.Slot == slot {
				*state = s | mMatched
			}
		}
	}
	return true
}

// slotOf locates l in a letter-sorted slot row (the typed NodeInfo
// letter order). The caller guarantees presence: every proposal
// letter was resolved from a real arc.
func slotOf(letters []view.Letter, l view.Letter) int {
	lo, hi := 0, len(letters)
	for lo < hi {
		mid := (lo + hi) >> 1
		if letters[mid].Less(l) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// randomizedMatchingOn is RandomizedMatching on a caller-provided
// engine, so repeated trials reuse one message plane.
func randomizedMatchingOn(e *model.WordEngine, h *model.Host, rng *rand.Rand) *model.Solution {
	sol, err := randomizedMatchingErr(e, h, rng)
	if err != nil {
		// Unreachable on an uncancellable engine: every slot was
		// resolved from a real arc and each node sends at most once.
		panic(fmt.Sprintf("algorithms: randomized matching round: %v", err))
	}
	return sol
}

// randomizedMatchingErr is the error-returning core of the one-round
// proposal matching: on a context-armed engine a run can legitimately
// fail mid-protocol (cancellation), which the service layer must see
// as an error rather than a panic.
func randomizedMatchingErr(e *model.WordEngine, h *model.Host, rng *rand.Rand) (*model.Solution, error) {
	n := h.G.N()
	proposal, states := drawProposals(h, rng)
	col, _, err := e.RunStates(nil, proposalWordAlgo(states), 3)
	if err != nil {
		return nil, fmt.Errorf("algorithms: randomized matching: %w", err)
	}
	sol := model.NewSolution(model.EdgeKind, n)
	for v := 0; v < n; v++ {
		if col[v]&mMatched != 0 {
			sol.Edges[graph.NewEdge(v, proposal[v])] = true
		}
	}
	return sol, nil
}

// letterTo returns the letter naming the arc between v and its
// neighbour u at v.
func letterTo(h *model.Host, v, u int) view.Letter {
	for _, a := range h.D.Out(v) {
		if a.To == u {
			return view.Letter{Label: a.Label}
		}
	}
	for _, a := range h.D.In(v) {
		if a.To == u {
			return view.Letter{Label: a.Label, In: true}
		}
	}
	panic(fmt.Sprintf("algorithms: no arc between neighbours %d and %d", v, u))
}

// RandomizedMatchingTrials runs the one-round proposal matching many
// times and reports the average matching size — the in-expectation
// guarantee made measurable. All trials share one engine, so only the
// first pays for the message plane.
func RandomizedMatchingTrials(h *model.Host, trials int, rng *rand.Rand) float64 {
	e := model.NewWordEngine(h)
	total := 0
	for i := 0; i < trials; i++ {
		total += randomizedMatchingOn(e, h, rng).Size()
	}
	return float64(total) / float64(trials)
}
