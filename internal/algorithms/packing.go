package algorithms

import (
	"fmt"
	"math/big"

	"repro/internal/graph"
	"repro/internal/model"
)

// VCEdgePackingResult reports a maximal-edge-packing vertex cover run.
type VCEdgePackingResult struct {
	// Cover is the computed vertex cover (the saturated nodes).
	Cover *model.Solution
	// Rounds is the number of bargaining rounds executed.
	Rounds int
	// Packing is the final edge packing y (a fractional matching).
	Packing map[graph.Edge]*big.Rat
}

// VCEdgePacking computes a 2-approximate minimum vertex cover in the
// PO model by the bargaining scheme of Åstrand et al. [DISC 2009] /
// Åstrand–Suomela [SPAA 2010]: the nodes cooperatively grow an edge
// packing y (y_e >= 0 with Σ_{e ∋ v} y_e <= 1) until it is maximal,
// and the saturated nodes form the cover. LP duality gives
// |C| <= 2 Σ y <= 2 τ(G).
//
// Each round, every unsaturated node offers its residual capacity
// split evenly over its active incident edges; each active edge
// receives the smaller of its two endpoints' offers. A node whose
// offer is locally minimal spends its whole residual, so at least one
// node saturates per round and every edge ends with a saturated
// endpoint. The scheme is anonymous and symmetric: it needs no
// identifiers and breaks no ties, so it is a genuine PO algorithm.
// Exact rational arithmetic keeps saturation decisions sound.
//
// The paper's citation gives an O(Δ²)-round bound for the original
// scheme; this implementation runs until quiescence (at most n rounds)
// and reports the measured round count — on the regular, symmetric
// instances of the experiments it terminates in O(1) rounds.
func VCEdgePacking(h *model.Host) (*VCEdgePackingResult, error) {
	g := h.G
	n := g.N()
	one := big.NewRat(1, 1)
	residual := make([]*big.Rat, n)
	for v := range residual {
		residual[v] = new(big.Rat).Set(one)
	}
	y := make(map[graph.Edge]*big.Rat, g.M())
	active := make(map[graph.Edge]bool, g.M())
	for _, e := range g.Edges() {
		y[e] = new(big.Rat)
		if g.Degree(e.U) > 0 && g.Degree(e.V) > 0 {
			active[e] = true
		}
	}
	saturated := make([]bool, n)
	activeDeg := make([]int, n)
	for e := range active {
		activeDeg[e.U]++
		activeDeg[e.V]++
	}

	rounds := 0
	for len(active) > 0 {
		if rounds > n+1 {
			return nil, fmt.Errorf("algorithms: edge packing did not converge in %d rounds", rounds)
		}
		rounds++
		// Offers.
		offer := make([]*big.Rat, n)
		for v := 0; v < n; v++ {
			if !saturated[v] && activeDeg[v] > 0 {
				offer[v] = new(big.Rat).Quo(residual[v], big.NewRat(int64(activeDeg[v]), 1))
			}
		}
		// Each active edge takes the minimum offer of its endpoints.
		type inc struct {
			e   graph.Edge
			amt *big.Rat
		}
		var incs []inc
		for e := range active {
			a, b := offer[e.U], offer[e.V]
			m := a
			if a == nil || (b != nil && b.Cmp(a) < 0) {
				m = b
			}
			if m == nil || m.Sign() == 0 {
				continue
			}
			incs = append(incs, inc{e: e, amt: new(big.Rat).Set(m)})
		}
		for _, ic := range incs {
			y[ic.e].Add(y[ic.e], ic.amt)
			residual[ic.e.U].Sub(residual[ic.e.U], ic.amt)
			residual[ic.e.V].Sub(residual[ic.e.V], ic.amt)
		}
		// Saturation and deactivation.
		for v := 0; v < n; v++ {
			if !saturated[v] && residual[v].Sign() == 0 {
				saturated[v] = true
			}
		}
		for e := range active {
			if saturated[e.U] || saturated[e.V] {
				delete(active, e)
				activeDeg[e.U]--
				activeDeg[e.V]--
			}
		}
	}

	cover := model.NewSolution(model.VertexKind, n)
	copy(cover.Vertices, saturated)
	return &VCEdgePackingResult{Cover: cover, Rounds: rounds, Packing: y}, nil
}

// PackingIsValid checks the edge-packing constraints: y >= 0 and node
// capacities respected; maximal means every edge has a saturated
// endpoint.
func PackingIsValid(g *graph.Graph, y map[graph.Edge]*big.Rat) (valid, maximal bool) {
	one := big.NewRat(1, 1)
	load := make([]*big.Rat, g.N())
	for v := range load {
		load[v] = new(big.Rat)
	}
	for e, w := range y {
		if w.Sign() < 0 {
			return false, false
		}
		load[e.U].Add(load[e.U], w)
		load[e.V].Add(load[e.V], w)
	}
	for v := 0; v < g.N(); v++ {
		if load[v].Cmp(one) > 0 {
			return false, false
		}
	}
	maximal = true
	for _, e := range g.Edges() {
		if load[e.U].Cmp(one) < 0 && load[e.V].Cmp(one) < 0 {
			maximal = false
		}
	}
	return true, maximal
}
