package algorithms

import (
	"math/rand"

	"repro/internal/model"
)

// This file is the engine-injection surface of the flagship
// algorithms: each On variant runs its plain twin on a caller-provided
// word engine, so the caller controls how the engine is armed —
// model.Engine.WithContext for cancellation, WithCheckpoints for
// barrier snapshots, Resume to continue an interrupted run — and can
// reuse one warmed message plane across attempts. The job subsystem
// (internal/job) is the primary caller: a durable job builds an
// engine, arms checkpointing into its on-disk store, optionally arms
// a resume snapshot recovered after a crash, and hands the engine
// here. The Ctx variants in ctx.go remain the one-shot convenience
// form.

// ColeVishkinMISOn is ColeVishkinMIS on a caller-provided engine.
func ColeVishkinMISOn(e *model.WordEngine, h *model.Host, ids []int) (*ColeVishkinResult, error) {
	return coleVishkinOn(e, h, ids)
}

// ColeVishkinMISFaultyOn is ColeVishkinMISFaulty on a caller-provided
// engine.
func ColeVishkinMISFaultyOn(e *model.WordEngine, h *model.Host, ids []int, sched model.Schedule) (*FaultyCVResult, error) {
	return coleVishkinFaultyOn(e, h, ids, sched)
}

// RandomizedMatchingOn is RandomizedMatchingCtx's core on a
// caller-provided engine (error-returning: an armed context can abort
// the run mid-protocol).
func RandomizedMatchingOn(e *model.WordEngine, h *model.Host, rng *rand.Rand) (*model.Solution, error) {
	return randomizedMatchingErr(e, h, rng)
}

// RandomizedMatchingFaultyOn is RandomizedMatchingFaulty on a
// caller-provided engine.
func RandomizedMatchingFaultyOn(e *model.WordEngine, h *model.Host, rng *rand.Rand, sched model.Schedule) (*FaultyMatchingResult, error) {
	return randomizedMatchingFaultyOn(e, h, rng, sched)
}
