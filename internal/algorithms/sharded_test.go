package algorithms

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/model"
)

// mustEngineHost resolves a registry descriptor into an engine-ready
// host, equipping plain graph families with the canonical labelling.
func mustEngineHost(t *testing.T, desc string) *model.Host {
	t.Helper()
	hh := host.MustParse(desc)
	if hh.D != nil {
		h, err := model.NewHost(hh.D)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	return model.HostFromGraph(hh.G)
}

// TestShardedCVMatchesFlat: the sharded Cole–Vishkin port reproduces
// the flat run node for node — same colours, same membership, same
// round count — at P=1, 2 and 8, with SeededIDs feeding both planes.
func TestShardedCVMatchesFlat(t *testing.T) {
	for _, n := range []int{12, 64, 97} {
		h := mustEngineHost(t, fmt.Sprintf("dcycle:%d", n))
		idf := model.SeededIDs(int64(n), 11)
		ids := make([]int, n)
		for v := range ids {
			ids[v] = idf(int64(v))
		}
		flat, err := ColeVishkinMIS(h, ids)
		if err != nil {
			t.Fatalf("n=%d flat: %v", n, err)
		}
		for _, p := range []int{1, 2, 8} {
			se, err := model.NewShardedEngine(model.SourceOf(h), p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ColeVishkinMISSharded(se, idf, n-1)
			if err != nil {
				t.Fatalf("n=%d P=%d: %v", n, p, err)
			}
			if res.Rounds != flat.Rounds {
				t.Fatalf("n=%d P=%d: rounds %d, want %d", n, p, res.Rounds, flat.Rounds)
			}
			misSize := int64(0)
			se.VisitStates(func(v int64, w uint64) {
				c, member := CVState(w)
				if c != flat.Colors[v] || member != flat.MIS.Vertices[v] {
					t.Fatalf("n=%d P=%d node %d: (colour %d, member %v), want (%d, %v)",
						n, p, v, c, member, flat.Colors[v], flat.MIS.Vertices[v])
				}
				if member {
					misSize++
				}
			})
			if res.MISSize != misSize || res.Violations != 0 || res.Uncovered != 0 {
				t.Fatalf("n=%d P=%d: result %+v disagrees with states (mis %d)", n, p, res, misSize)
			}
		}
	}
}

// TestShardedCVFaultyMatchesFlat: under the E17 fault profiles the
// sharded run degrades identically — same survivor MIS, same safety
// counts, same fault report.
func TestShardedCVFaultyMatchesFlat(t *testing.T) {
	const n = 60
	h := mustEngineHost(t, fmt.Sprintf("dcycle:%d", n))
	idf := model.SeededIDs(int64(n), 5)
	ids := make([]int, n)
	for v := range ids {
		ids[v] = idf(int64(v))
	}
	for _, prof := range []string{"lossy:p=0.2", "crash:f=5,by=4", "crash:f=4,by=3,recover=6", "dup+reorder:p=0.3"} {
		pr := model.MustParseProfile(prof)
		flat, err := ColeVishkinMISFaulty(h, ids, pr.New(h, 77))
		if err != nil {
			t.Fatalf("%s flat: %v", prof, err)
		}
		for _, p := range []int{1, 2, 8} {
			se, err := model.NewShardedEngine(model.SourceOf(h), p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ColeVishkinMISShardedFaulty(se, idf, n-1, pr.New(h, 77))
			if err != nil {
				t.Fatalf("%s P=%d: %v", prof, p, err)
			}
			if res.Rounds != flat.Rounds {
				t.Fatalf("%s P=%d: rounds %d, want %d", prof, p, res.Rounds, flat.Rounds)
			}
			if int(res.Violations) != flat.Violations || int(res.Uncovered) != flat.Uncovered {
				t.Fatalf("%s P=%d: safety (%d,%d), want (%d,%d)",
					prof, p, res.Violations, res.Uncovered, flat.Violations, flat.Uncovered)
			}
			fr, sr := flat.Report, res.Report
			if sr.Dropped != fr.Dropped || sr.Duplicated != fr.Duplicated ||
				sr.Reordered != fr.Reordered || sr.DownSteps != fr.DownSteps ||
				sr.NumCrashed != fr.NumCrashed {
				t.Fatalf("%s P=%d: report %+v, want %+v", prof, p, sr, fr)
			}
			se.VisitStates(func(v int64, w uint64) {
				if sr.CrashedNode(int(v)) {
					return
				}
				_, member := CVState(w)
				if member != flat.MIS.Vertices[v] {
					t.Fatalf("%s P=%d node %d: member %v, want %v", prof, p, v, member, flat.MIS.Vertices[v])
				}
			})
		}
	}
}

// shardedEdges collects the sharded matching's edge set in flat edge
// form.
func shardedEdges(se *model.ShardedEngine, crashed func(int64) bool) map[graph.Edge]bool {
	out := map[graph.Edge]bool{}
	VisitShardedMatching(se, crashed, func(u, v int64) {
		out[graph.NewEdge(int(u), int(v))] = true
	})
	return out
}

// TestShardedMatchingMatchesFlat: same seed, same edges — the
// in-Init rng draw reproduces the flat pre-drawn proposal stream.
func TestShardedMatchingMatchesFlat(t *testing.T) {
	for _, desc := range []string{"petersen", "torus:4x4", "dcycle:12", "shift-regular:d=4,n=18,seed=9", "cycle:13"} {
		h := mustEngineHost(t, desc)
		flat := RandomizedMatching(h, rand.New(rand.NewSource(99)))
		for _, p := range []int{1, 2, 8} {
			se, err := model.NewShardedEngine(model.SourceOf(h), p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RandomizedMatchingSharded(se, rand.New(rand.NewSource(99)))
			if err != nil {
				t.Fatalf("%s P=%d: %v", desc, p, err)
			}
			if res.Conflicts != 0 {
				t.Fatalf("%s P=%d: %d conflicts", desc, p, res.Conflicts)
			}
			if res.Proposals != int64(h.G.N()) {
				t.Fatalf("%s P=%d: %d proposals, want %d", desc, p, res.Proposals, h.G.N())
			}
			got := shardedEdges(se, nil)
			if int(res.Matched) != len(got) || len(got) != flat.Size() {
				t.Fatalf("%s P=%d: %d/%d edges, want %d", desc, p, res.Matched, len(got), flat.Size())
			}
			for e := range flat.Edges {
				if flat.Edges[e] && !got[e] {
					t.Fatalf("%s P=%d: missing edge %v", desc, p, e)
				}
			}
		}
	}
}

// TestShardedMatchingFaultyMatchesFlat: the degraded matchings agree
// edge for edge under every profile and shard count.
func TestShardedMatchingFaultyMatchesFlat(t *testing.T) {
	for _, desc := range []string{"torus:4x4", "dcycle:20"} {
		h := mustEngineHost(t, desc)
		for _, prof := range []string{"lossy:p=0.4", "crash:f=4,by=2", "dup+reorder:p=0.3"} {
			pr := model.MustParseProfile(prof)
			flat, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(7)), pr.New(h, 13))
			if err != nil {
				t.Fatalf("%s/%s flat: %v", desc, prof, err)
			}
			for _, p := range []int{1, 2, 8} {
				se, err := model.NewShardedEngine(model.SourceOf(h), p)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RandomizedMatchingShardedFaulty(se, rand.New(rand.NewSource(7)), pr.New(h, 13))
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", desc, prof, p, err)
				}
				if res.Conflicts != 0 {
					t.Fatalf("%s/%s P=%d: %d conflicts", desc, prof, p, res.Conflicts)
				}
				got := shardedEdges(se, func(v int64) bool { return res.Report.CrashedNode(int(v)) })
				want := 0
				for e, on := range flat.Matching.Edges {
					if !on {
						continue
					}
					want++
					if !got[e] {
						t.Fatalf("%s/%s P=%d: missing edge %v", desc, prof, p, e)
					}
				}
				if len(got) != want || int(res.Matched) != want {
					t.Fatalf("%s/%s P=%d: %d/%d edges, want %d", desc, prof, p, res.Matched, len(got), want)
				}
			}
		}
	}
}

// TestShardedCVRejectsNonCycle: the sharded plan check mirrors the
// flat one.
func TestShardedCVRejectsNonCycle(t *testing.T) {
	h := mustEngineHost(t, "torus:4x4")
	se, err := model.NewShardedEngine(model.SourceOf(h), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ColeVishkinMISSharded(se, model.SeededIDs(16, 1), 15); err == nil {
		t.Fatal("non-cycle accepted")
	}
	cyc, err := host.ParseShard("dcycle:16")
	if err != nil {
		t.Fatal(err)
	}
	se2, err := model.NewShardedEngine(cyc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ColeVishkinMISSharded(se2, nil, 15); err == nil {
		t.Fatal("nil ids accepted")
	}
}

// TestSeededIDsPermutation: SeededIDs is a permutation of [0, n) —
// distinct ids, max n-1 — so the CV id-space bound is tight with no
// materialised table.
func TestSeededIDsPermutation(t *testing.T) {
	for _, n := range []int64{1, 2, 37, 1024, 5000} {
		idf := model.SeededIDs(n, 42)
		seen := make([]bool, n)
		for v := int64(0); v < n; v++ {
			id := idf(v)
			if id < 0 || int64(id) >= n {
				t.Fatalf("n=%d: id %d out of range", n, id)
			}
			if seen[id] {
				t.Fatalf("n=%d: duplicate id %d", n, id)
			}
			seen[id] = true
		}
	}
}
