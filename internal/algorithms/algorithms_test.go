package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

// eulerianHost equips an even-degree graph with an Eulerian orientation.
func eulerianHost(t *testing.T, g *graph.Graph) *model.Host {
	t.Helper()
	orient, err := digraph.EulerianOrientation(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := model.NewHost(digraph.FromPorts(g, orient).D)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func ratioOf(t *testing.T, p problems.Problem, g *graph.Graph, sol *model.Solution) float64 {
	t.Helper()
	r, err := problems.Ratio(p, g, sol)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return r
}

func TestEDSOneOutOnCycles(t *testing.T) {
	// On Δ'=2 (cycles), the bound is 4 − 2/2 = 3.
	for _, n := range []int{6, 9, 12, 15} {
		h := eulerianHost(t, graph.Cycle(n))
		sol, err := model.RunPO(h, EDSOneOut(), model.EdgeKind)
		if err != nil {
			t.Fatal(err)
		}
		r := ratioOf(t, problems.MinEdgeDominatingSet{}, h.G, sol)
		if r > 3.0001 {
			t.Errorf("C%d: ratio %v exceeds 3", n, r)
		}
	}
}

func TestEDSOneOutOnFourRegular(t *testing.T) {
	// Δ' = 4: bound 4 − 2/4 = 3.5.
	for _, g := range []*graph.Graph{
		graph.Circulant(9, 1, 2),
		graph.Circulant(11, 1, 3),
		graph.Torus(3, 4),
	} {
		h := eulerianHost(t, g)
		sol, err := model.RunPO(h, EDSOneOut(), model.EdgeKind)
		if err != nil {
			t.Fatal(err)
		}
		r := ratioOf(t, problems.MinEdgeDominatingSet{}, h.G, sol)
		if r > 3.5001 {
			t.Errorf("%v: ratio %v exceeds 4 - 2/Δ' = 3.5", g, r)
		}
	}
}

func TestEDSOneOutFeasibleAnyOrientation(t *testing.T) {
	// Feasibility must hold under the default (non-Eulerian)
	// orientation too, including nodes with out-degree 0.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5; i++ {
		g := graph.RandomRegular(10, 3, rng)
		h := model.HostFromGraph(g)
		sol, err := model.RunPO(h, EDSOneOut(), model.EdgeKind)
		if err != nil {
			t.Fatal(err)
		}
		if err := (problems.MinEdgeDominatingSet{}).Feasible(g, sol); err != nil {
			t.Errorf("infeasible EDS: %v", err)
		}
	}
}

func TestECOneEdgeRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*graph.Graph{
		graph.Cycle(8),
		graph.Petersen(),
		graph.RandomRegular(12, 3, rng),
		graph.Star(6),
	} {
		h := model.HostFromGraph(g)
		sol, err := model.RunPO(h, ECOneEdge(), model.EdgeKind)
		if err != nil {
			t.Fatal(err)
		}
		r := ratioOf(t, problems.MinEdgeCover{}, g, sol)
		if r > 2.0001 {
			t.Errorf("%v: edge cover ratio %v exceeds 2", g, r)
		}
	}
}

func TestDSAllRatio(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(9), graph.Petersen(), graph.Complete(5)} {
		h := model.HostFromGraph(g)
		sol, err := model.RunPO(h, DSAll(), model.VertexKind)
		if err != nil {
			t.Fatal(err)
		}
		r := ratioOf(t, problems.MinDominatingSet{}, g, sol)
		bound := float64(g.MaxDegree() + 1)
		if r > bound+0.0001 {
			t.Errorf("%v: DS ratio %v exceeds Δ+1 = %v", g, r, bound)
		}
	}
}

func TestVCAllRatioOnRegular(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(8), graph.Petersen(), graph.Complete(6)} {
		h := model.HostFromGraph(g)
		sol, err := model.RunPO(h, VCAll(), model.VertexKind)
		if err != nil {
			t.Fatal(err)
		}
		r := ratioOf(t, problems.MinVertexCover{}, g, sol)
		if r > 2.0001 {
			t.Errorf("%v: VC ratio %v exceeds 2 on a regular graph", g, r)
		}
	}
}

func TestEmptyOutputsFeasible(t *testing.T) {
	g := graph.Cycle(6)
	h := model.HostFromGraph(g)
	is, err := model.RunPO(h, EmptyVertex(), model.VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MaxIndependentSet{}).Feasible(g, is); err != nil {
		t.Errorf("empty IS infeasible: %v", err)
	}
	mm, err := model.RunPO(h, EmptyEdge(), model.EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MaxMatching{}).Feasible(g, mm); err != nil {
		t.Errorf("empty matching infeasible: %v", err)
	}
}

func TestEDSAllFeasible(t *testing.T) {
	g := graph.Cycle(9)
	h := model.HostFromGraph(g)
	sol, err := model.RunPO(h, EDSAll(), model.EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() != 9 {
		t.Errorf("EDSAll should select all 9 edges, got %d", sol.Size())
	}
	r := ratioOf(t, problems.MinEdgeDominatingSet{}, g, sol)
	if r != 3 {
		t.Errorf("C9: all-edges ratio %v, want 3 (= n/⌈n/3⌉)", r)
	}
}

func TestVCEdgePacking(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hosts := []*graph.Graph{
		graph.Cycle(9),
		graph.Path(7),
		graph.Star(5),
		graph.Petersen(),
		graph.CompleteBipartite(3, 5),
		graph.RandomRegular(14, 3, rng),
		graph.RandomGraph(12, 0.3, rng),
	}
	for _, g := range hosts {
		if g.M() == 0 {
			continue
		}
		h := model.HostFromGraph(g)
		res, err := VCEdgePacking(h)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		valid, maximal := PackingIsValid(g, res.Packing)
		if !valid || !maximal {
			t.Errorf("%v: packing valid=%v maximal=%v", g, valid, maximal)
		}
		r := ratioOf(t, problems.MinVertexCover{}, g, res.Cover)
		if r > 2.0001 {
			t.Errorf("%v: VC ratio %v exceeds 2", g, r)
		}
		if res.Rounds <= 0 || res.Rounds > g.N()+1 {
			t.Errorf("%v: rounds %d out of range", g, res.Rounds)
		}
	}
}

func TestVCEdgePackingSymmetricFast(t *testing.T) {
	// On vertex-transitive instances the bargaining finishes in one
	// round (everything saturates simultaneously).
	h := model.HostFromGraph(graph.Cycle(30))
	res, err := VCEdgePacking(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("cycle bargaining rounds = %d, want 1", res.Rounds)
	}
}

func TestColeVishkinMIS(t *testing.T) {
	for _, n := range []int{3, 5, 8, 16, 33} {
		g := graph.Cycle(n)
		// Orient around the cycle: i -> i+1.
		b := digraph.NewBuilder(n, 1)
		for i := 0; i < n; i++ {
			b.MustAddArc(i, (i+1)%n, 0)
		}
		h, err := model.NewHost(b.Build())
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = (i*137 + 11) % (10 * n) // scrambled but unique mod 10n? ensure unique below
		}
		seen := map[int]bool{}
		for i := range ids {
			for seen[ids[i]] {
				ids[i]++
			}
			seen[ids[i]] = true
		}
		res, err := ColeVishkinMIS(h, ids)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Valid MIS: independent and maximal.
		if err := (problems.MaxIndependentSet{}).Feasible(g, res.MIS); err != nil {
			t.Fatalf("n=%d: not independent: %v", n, err)
		}
		for v := 0; v < n; v++ {
			if res.MIS.Vertices[v] {
				continue
			}
			dominated := false
			for _, u := range g.Neighbors(v) {
				if res.MIS.Vertices[u] {
					dominated = true
				}
			}
			if !dominated {
				t.Fatalf("n=%d: node %d violates maximality", n, v)
			}
		}
		// Proper 3-colouring.
		for _, e := range g.Edges() {
			if res.Colors[e.U] == res.Colors[e.V] {
				t.Fatalf("n=%d: adjacent nodes share colour %d", n, res.Colors[e.U])
			}
		}
	}
}

func TestColeVishkinRejectsBadHost(t *testing.T) {
	h := model.HostFromGraph(graph.Cycle(5)) // smaller-endpoint orientation: not consistent
	if _, err := ColeVishkinMIS(h, []int{1, 2, 3, 4, 5}); err == nil {
		t.Error("inconsistent orientation accepted")
	}
}

func TestCVRoundsGrowth(t *testing.T) {
	// log*-type growth: rounds increase extremely slowly.
	r10 := CVRounds(10)
	r1e6 := CVRounds(1_000_000)
	r1e12 := CVRounds(1_000_000_000_000)
	if !(r10 <= r1e6 && r1e6 <= r1e12) {
		t.Errorf("rounds not monotone: %d %d %d", r10, r1e6, r1e12)
	}
	if r1e12 > r10+4 {
		t.Errorf("rounds grow too fast for log*: %d vs %d", r1e12, r10)
	}
}

func TestOIAlgorithmsFeasible(t *testing.T) {
	g := graph.Petersen()
	h := model.HostFromGraph(g)
	rank := order.Identity(g.N())
	eds, err := model.RunOI(h, rank, OISmallestNeighborEDS(), model.EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MinEdgeDominatingSet{}).Feasible(g, eds); err != nil {
		t.Errorf("OI EDS infeasible: %v", err)
	}
	vc, err := model.RunOI(h, rank, OILocalMinJoinsVC(), model.VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MinVertexCover{}).Feasible(g, vc); err != nil {
		t.Errorf("OI VC infeasible: %v", err)
	}
}

func TestIDAlgorithmsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomRegular(12, 4, rng)
	h := model.HostFromGraph(g)
	ids := rng.Perm(100)[:12]
	eds, err := model.RunID(h, ids, IDGreedyEDS(), model.EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MinEdgeDominatingSet{}).Feasible(g, eds); err != nil {
		t.Errorf("ID EDS infeasible: %v", err)
	}
	vc, err := model.RunID(h, ids, IDNonMinimumVC(), model.VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MinVertexCover{}).Feasible(g, vc); err != nil {
		t.Errorf("ID VC infeasible: %v", err)
	}
	ds, err := model.RunID(h, ids, IDParityDS(), model.VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MinDominatingSet{}).Feasible(g, ds); err != nil {
		t.Errorf("ID DS infeasible: %v", err)
	}
}

// Property: the edge-packing cover is feasible and 2-approximate on
// random graphs.
func TestQuickEdgePackingTwoApprox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGraph(4+rng.Intn(10), 0.2+0.5*rng.Float64(), rng)
		if g.M() == 0 {
			return true
		}
		h := model.HostFromGraph(g)
		res, err := VCEdgePacking(h)
		if err != nil {
			return false
		}
		if err := (problems.MinVertexCover{}).Feasible(g, res.Cover); err != nil {
			return false
		}
		r, err := problems.Ratio(problems.MinVertexCover{}, g, res.Cover)
		return err == nil && r <= 2.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: IDGreedyEDS is feasible on arbitrary graphs without
// isolated vertices.
func TestQuickIDGreedyEDSFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRegular(8+2*rng.Intn(4), 3, rng)
		h := model.HostFromGraph(g)
		ids := rng.Perm(1000)[:g.N()]
		sol, err := model.RunID(h, ids, IDGreedyEDS(), model.EdgeKind)
		if err != nil {
			return false
		}
		return (problems.MinEdgeDominatingSet{}).Feasible(g, sol) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomizedMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range []*graph.Graph{graph.Cycle(20), graph.Petersen(), graph.RandomRegular(16, 4, rng)} {
		h := model.HostFromGraph(g)
		for i := 0; i < 5; i++ {
			sol := RandomizedMatching(h, rng)
			if err := (problems.MaxMatching{}).Feasible(g, sol); err != nil {
				t.Fatalf("%v: invalid matching: %v", g, err)
			}
		}
		// Expectation check: E|M| >= m/Δ² with generous slack.
		avg := RandomizedMatchingTrials(h, 300, rng)
		lower := float64(g.M()) / float64(g.MaxDegree()*g.MaxDegree())
		if avg < lower*0.5 {
			t.Errorf("%v: average %v below half the m/Δ² bound %v", g, avg, lower)
		}
	}
}

func TestEDSOneOutOperationalEquivalence(t *testing.T) {
	// The ball-function and round-based executions of a PO algorithm
	// coincide (equation (1) of the paper, for a real algorithm).
	g := graph.Circulant(11, 1, 3)
	orient, err := digraph.EulerianOrientation(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := model.NewHost(digraph.FromPorts(g, orient).D)
	if err != nil {
		t.Fatal(err)
	}
	a, err := model.RunPO(h, EDSOneOut(), model.EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.SimulatePO(h, EDSOneOut(), model.EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for e := range a.Edges {
		if !b.Edges[e] {
			t.Fatalf("edge %v missing from the message-passing run", e)
		}
	}
}
