// Package algorithms implements the local algorithms discussed in
// Sections 1.4–1.7 of the paper:
//
//   - PO upper-bound baselines: the one-out-edge edge-dominating-set
//     algorithm (factor 4−2/Δ' on Δ'-regular Eulerian-oriented
//     graphs), the one-incident-edge edge-cover algorithm (factor 2),
//     the everyone-joins dominating-set algorithm (factor Δ+1), the
//     select-everything vertex cover (factor 2 on regular graphs), and
//     a maximal-edge-packing vertex cover (factor 2 on every graph);
//   - the Cole–Vishkin O(log* n) 3-colouring + MIS pipeline on
//     directed cycles in the ID model (the separation of Fig. 2);
//   - identifier-greedy heuristics used as ID-model adversaries in the
//     lower-bound transfer experiments.
package algorithms

import (
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/view"
)

// EDSOneOut is the radius-1 PO algorithm for minimum edge dominating
// set: every node selects its smallest-label outgoing arc (if any).
// Every node with an out-arc gets an incident selected edge, so the
// result is edge dominating whenever every node has out-degree >= 1 or
// a neighbour with out-degree >= 1; in particular it is feasible under
// any orientation (a node with out-degree 0 has all arcs incoming, and
// each tail selects some out-arc at its own side).
//
// On Δ'-regular graphs with an Eulerian orientation it selects at most
// n edges while the optimum is at least Δ'n/(4Δ'−2) giving the factor
// 4 − 2/Δ' of Suomela [2010].
func EDSOneOut() model.PO {
	return model.FuncPO{R: 1, Fn: func(t *view.Tree) model.Output {
		best, ok := minOutLetter(t)
		if !ok {
			return model.Output{}
		}
		return model.Output{Letters: []view.Letter{best}}
	}}
}

// ECOneEdge is the radius-1 PO algorithm for minimum edge cover: every
// node selects one incident arc (its smallest-label out-arc if it has
// one, else its smallest-label in-arc). Every non-isolated node is
// covered and at most n edges are selected; since any edge cover has
// at least n/2 edges, this is a factor-2 approximation — matching the
// tight bound of Section 1.4.
func ECOneEdge() model.PO {
	return model.FuncPO{R: 1, Fn: func(t *view.Tree) model.Output {
		if best, ok := minOutLetter(t); ok {
			return model.Output{Letters: []view.Letter{best}}
		}
		if best, ok := minInLetter(t); ok {
			return model.Output{Letters: []view.Letter{best}}
		}
		return model.Output{}
	}}
}

// DSAll is the radius-0 PO algorithm for minimum dominating set:
// everyone joins. Any dominating set has size at least n/(Δ+1), so
// this is a (Δ+1)-approximation — which equals the tight bound
// Δ' + 1 of Section 1.4 for even Δ. (For odd Δ the tight algorithm
// needs the weak-colouring machinery of Åstrand et al. [2010], which
// shaves the bound to Δ' + 1 = Δ; we keep the simple variant and
// document the gap.)
func DSAll() model.PO {
	return model.FuncPO{R: 0, Fn: func(*view.Tree) model.Output {
		return model.Output{Member: true}
	}}
}

// VCAll is the radius-0 PO algorithm selecting every vertex. On
// d-regular graphs (d >= 1) the optimum vertex cover has size at least
// m/d = n/2, so this is a factor-2 approximation there — and factor 2
// is optimal in all three models (Section 1.4).
func VCAll() model.PO {
	return model.FuncPO{R: 0, Fn: func(*view.Tree) model.Output {
		return model.Output{Member: true}
	}}
}

// EDSAll is the radius-0 PO algorithm selecting every incident edge —
// the trivial feasible edge dominating set. On cycles (Δ' = 2) it
// selects all n edges against an optimum of ⌈n/3⌉: asymptotically the
// factor-3 = 4 − 2/Δ' bound, which the lower-bound engine certifies to
// be optimal for PO algorithms on cycles.
func EDSAll() model.PO {
	return model.FuncPO{R: 1, Fn: func(t *view.Tree) model.Output {
		return model.Output{Letters: t.Letters()}
	}}
}

// EmptyVertex outputs the empty vertex set: the only feasible constant
// output for maximum independent set on symmetric instances, witnessing
// the non-approximability of MIS in PO (Section 1.4).
func EmptyVertex() model.PO {
	return model.FuncPO{R: 0, Fn: func(*view.Tree) model.Output {
		return model.Output{}
	}}
}

// EmptyEdge outputs the empty edge set: the only feasible constant
// output for maximum matching on symmetric instances.
func EmptyEdge() model.PO {
	return model.FuncPO{R: 0, Fn: func(*view.Tree) model.Output {
		return model.Output{}
	}}
}

func minOutLetter(t *view.Tree) (view.Letter, bool) {
	// Children are letter-sorted (label ascending, ℓ before ℓ^{-1}),
	// so the first forward letter is the smallest-label out-arc.
	for _, c := range t.Children() {
		if !c.L.In {
			return c.L, true
		}
	}
	return view.Letter{}, false
}

func minInLetter(t *view.Tree) (view.Letter, bool) {
	for _, c := range t.Children() {
		if c.L.In {
			return c.L, true
		}
	}
	return view.Letter{}, false
}

// --- OI algorithms ---

// OISmallestNeighborEDS is the OI analogue of the greedy edge selection:
// every node selects the edge towards its smallest-ordered neighbour.
// The union contains an incident edge of every non-isolated node, so it
// is edge dominating.
func OISmallestNeighborEDS() model.OI {
	return model.FuncOI{R: 1, Fn: func(b *order.Ball) model.Output {
		ns := model.RootNeighbors(b.G, b.Root)
		if len(ns) == 0 {
			return model.Output{}
		}
		return model.Output{Neighbors: ns[:1]}
	}}
}

// OILocalMinJoinsVC is an order-based vertex cover: a node joins unless
// it is a strict local minimum of the order. Every edge has a
// non-minimum endpoint, so the result is a vertex cover.
func OILocalMinJoinsVC() model.OI {
	return model.FuncOI{R: 1, Fn: func(b *order.Ball) model.Output {
		return model.Output{Member: b.Root != 0}
	}}
}

// --- ID adversaries ---

// IDGreedyEDS selects the edge towards the smallest-identifier
// neighbour; an ID-model heuristic that genuinely uses identifiers for
// coordination (adjacent nodes often agree on the same edge, shrinking
// the solution) and serves as the adversary algorithm in the
// Theorem 1.6 transfer experiment.
func IDGreedyEDS() model.ID {
	return model.FuncID{R: 1, Fn: func(b *model.IDBall) model.Output {
		ns := model.RootNeighbors(b.G, b.Root)
		if len(ns) == 0 {
			return model.Output{}
		}
		// IDs are sorted by ball index, so ns[0] is the smallest-id
		// neighbour.
		return model.Output{Neighbors: ns[:1]}
	}}
}

// IDNonMinimumVC joins the cover unless the node's identifier is
// smaller than all neighbours' identifiers.
func IDNonMinimumVC() model.ID {
	return model.FuncID{R: 1, Fn: func(b *model.IDBall) model.Output {
		return model.Output{Member: b.Root != 0}
	}}
}

// IDParityDS is a deliberately identifier-abusing dominating set: a
// node joins iff its identifier is even, patched to stay feasible by
// also joining when it is a local minimum among odd nodes. Used in the
// Ramsey (ID -> OI) demonstration: its output depends on numeric
// identifier values, which no OI algorithm can express, yet on
// Ramsey-selected identifier sets it collapses to an order-invariant
// behaviour.
func IDParityDS() model.ID {
	return model.FuncID{R: 1, Fn: func(b *model.IDBall) model.Output {
		if b.IDs[b.Root]%2 == 0 {
			return model.Output{Member: true}
		}
		// Feasibility patch: an odd node joins unless it has an even
		// neighbour (which covers it).
		for _, u := range b.G.Neighbors(b.Root) {
			if b.IDs[u]%2 == 0 {
				return model.Output{}
			}
		}
		return model.Output{Member: true}
	}}
}
