package algorithms

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/problems"
)

// TestRandomizedMatchingFaultyClean: a nil schedule reproduces the
// clean matching for the same rng stream, with an all-zero report.
func TestRandomizedMatchingFaultyClean(t *testing.T) {
	h := model.HostFromGraph(graph.Torus(8, 8))
	want := RandomizedMatching(h, rand.New(rand.NewSource(4)))
	res, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsEqual(want, res.Matching) {
		t.Error("clean faulty matching differs from RandomizedMatching")
	}
	if res.Report.Profile != "clean" || res.Report.Dropped != 0 || res.Conflicts != 0 {
		t.Errorf("clean report: %+v conflicts=%d", res.Report, res.Conflicts)
	}
}

// TestRandomizedMatchingFaultyDegrades: under every profile the output
// stays a feasible matching — loss only shrinks it. Failures print
// the reproducer (seed, profile).
func TestRandomizedMatchingFaultyDegrades(t *testing.T) {
	h := model.HostFromGraph(graph.Torus(10, 10))
	clean := RandomizedMatching(h, rand.New(rand.NewSource(4)))
	for _, profile := range []string{"lossy:p=0.3", "dup+reorder", "crash:f=10,by=1", "churn:p=0.3,window=1", "adversarial:p=0.2,f=5,by=1"} {
		sched := model.MustParseProfile(profile).New(h, 6)
		res, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(4)), sched)
		if err != nil {
			t.Fatalf("%v — reproducer (seed 6, profile %q)", err, profile)
		}
		if res.Conflicts != 0 {
			t.Errorf("%d conflicts — reproducer (seed 6, profile %q)", res.Conflicts, profile)
		}
		if err := (problems.MaxMatching{}).Feasible(h.G, res.Matching); err != nil {
			t.Errorf("infeasible matching: %v — reproducer (seed 6, profile %q)", err, profile)
		}
		if res.Matching.Size() > clean.Size() {
			t.Errorf("faulty matching larger than clean (%d > %d) — reproducer (seed 6, profile %q)",
				res.Matching.Size(), clean.Size(), profile)
		}
	}
	// Heavy loss must actually cost edges.
	sched := model.MustParseProfile("lossy:p=0.5").New(h, 6)
	res, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(4)), sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() >= clean.Size() {
		t.Errorf("p=0.5 loss kept the full matching (%d vs clean %d)", res.Matching.Size(), clean.Size())
	}
}

// TestColeVishkinFaultyCleanAndCrash: a nil schedule reproduces the
// clean MIS with zero safety counts; a crash schedule keeps the
// survivor-induced output safe when the crashes happen after the
// colour reduction cannot be disturbed (crash-stop loses messages,
// but the survivors' sweep only ever abstains, never collides, on a
// cycle with both neighbours reporting).
func TestColeVishkinFaultyCleanAndCrash(t *testing.T) {
	n := 64
	h := dcycleHost(t, n)
	ids := rand.New(rand.NewSource(1)).Perm(4 * n)[:n]
	clean, err := ColeVishkinMIS(h, ids)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColeVishkinMISFaulty(h, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsEqual(clean.MIS, res.MIS) || res.Violations != 0 || res.Uncovered != 0 {
		t.Errorf("clean faulty CV differs: violations=%d uncovered=%d", res.Violations, res.Uncovered)
	}
	if res.Rounds != clean.Rounds {
		t.Errorf("clean faulty CV rounds %d vs %d", res.Rounds, clean.Rounds)
	}

	crash, err := ColeVishkinMISFaulty(h, ids, model.MustParseProfile("crash:f=6,by=4").New(h, 9))
	if err != nil {
		t.Fatal(err)
	}
	if crash.Report.NumCrashed != 6 {
		t.Errorf("crashed %d nodes, want 6", crash.Report.NumCrashed)
	}
	for v := 0; v < n; v++ {
		if crash.Report.CrashedNode(v) && crash.MIS.Vertices[v] {
			t.Errorf("crashed node %d reported as MIS member", v)
		}
	}
	// Heavy loss on the colour exchange must produce measurable safety
	// degradation (that is the E17 curve).
	lossy, err := ColeVishkinMISFaulty(h, ids, model.MustParseProfile("lossy:p=0.3").New(h, 9))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Violations == 0 && lossy.Uncovered == 0 {
		t.Error("p=0.3 loss left the MIS fully safe — degradation not observable")
	}
	if lossy.Report.Dropped == 0 {
		t.Error("lossy run dropped nothing")
	}
}
