package algorithms

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/problems"
)

// TestRandomizedMatchingFaultyClean: a nil schedule reproduces the
// clean matching for the same rng stream, with an all-zero report.
func TestRandomizedMatchingFaultyClean(t *testing.T) {
	h := model.HostFromGraph(graph.Torus(8, 8))
	want := RandomizedMatching(h, rand.New(rand.NewSource(4)))
	res, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(4)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsEqual(want, res.Matching) {
		t.Error("clean faulty matching differs from RandomizedMatching")
	}
	if res.Report.Profile != "clean" || res.Report.Dropped != 0 || res.Conflicts != 0 {
		t.Errorf("clean report: %+v conflicts=%d", res.Report, res.Conflicts)
	}
}

// TestRandomizedMatchingFaultyDegrades: under every profile the output
// stays a feasible matching — loss only shrinks it. Failures print
// the reproducer (seed, profile).
func TestRandomizedMatchingFaultyDegrades(t *testing.T) {
	h := model.HostFromGraph(graph.Torus(10, 10))
	clean := RandomizedMatching(h, rand.New(rand.NewSource(4)))
	for _, profile := range []string{"lossy:p=0.3", "dup+reorder", "crash:f=10,by=1", "churn:p=0.3,window=1", "adversarial:p=0.2,f=5,by=1"} {
		sched := model.MustParseProfile(profile).New(h, 6)
		res, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(4)), sched)
		if err != nil {
			t.Fatalf("%v — reproducer (seed 6, profile %q)", err, profile)
		}
		if res.Conflicts != 0 {
			t.Errorf("%d conflicts — reproducer (seed 6, profile %q)", res.Conflicts, profile)
		}
		if err := (problems.MaxMatching{}).Feasible(h.G, res.Matching); err != nil {
			t.Errorf("infeasible matching: %v — reproducer (seed 6, profile %q)", err, profile)
		}
		if res.Matching.Size() > clean.Size() {
			t.Errorf("faulty matching larger than clean (%d > %d) — reproducer (seed 6, profile %q)",
				res.Matching.Size(), clean.Size(), profile)
		}
	}
	// Heavy loss must actually cost edges.
	sched := model.MustParseProfile("lossy:p=0.5").New(h, 6)
	res, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(4)), sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() >= clean.Size() {
		t.Errorf("p=0.5 loss kept the full matching (%d vs clean %d)", res.Matching.Size(), clean.Size())
	}
}

// TestColeVishkinFaultyCleanAndCrash: a nil schedule reproduces the
// clean MIS with zero safety counts; a crash schedule keeps the
// survivor-induced output safe when the crashes happen after the
// colour reduction cannot be disturbed (crash-stop loses messages,
// but the survivors' sweep only ever abstains, never collides, on a
// cycle with both neighbours reporting).
func TestColeVishkinFaultyCleanAndCrash(t *testing.T) {
	n := 64
	h := dcycleHost(t, n)
	ids := rand.New(rand.NewSource(1)).Perm(4 * n)[:n]
	clean, err := ColeVishkinMIS(h, ids)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColeVishkinMISFaulty(h, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !solutionsEqual(clean.MIS, res.MIS) || res.Violations != 0 || res.Uncovered != 0 {
		t.Errorf("clean faulty CV differs: violations=%d uncovered=%d", res.Violations, res.Uncovered)
	}
	if res.Rounds != clean.Rounds {
		t.Errorf("clean faulty CV rounds %d vs %d", res.Rounds, clean.Rounds)
	}

	crash, err := ColeVishkinMISFaulty(h, ids, model.MustParseProfile("crash:f=6,by=4").New(h, 9))
	if err != nil {
		t.Fatal(err)
	}
	if crash.Report.NumCrashed != 6 {
		t.Errorf("crashed %d nodes, want 6", crash.Report.NumCrashed)
	}
	for v := 0; v < n; v++ {
		if crash.Report.CrashedNode(v) && crash.MIS.Vertices[v] {
			t.Errorf("crashed node %d reported as MIS member", v)
		}
	}
	// Heavy loss on the colour exchange must produce measurable safety
	// degradation (that is the E17 curve).
	lossy, err := ColeVishkinMISFaulty(h, ids, model.MustParseProfile("lossy:p=0.3").New(h, 9))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Violations == 0 && lossy.Uncovered == 0 {
		t.Error("p=0.3 loss left the MIS fully safe — degradation not observable")
	}
	if lossy.Report.Dropped == 0 {
		t.Error("lossy run dropped nothing")
	}
}

// stallSchedule holds node 0 transiently down in every round without
// ever crashing it — the engine keeps waiting for it, so any
// algorithm with a finite round budget must surface a non-halt error
// carrying this profile string.
type stallSchedule struct{}

func (stallSchedule) String() string { return "stall:node=0" }

func (stallSchedule) Fate(int, int32) model.Fate { return model.Deliver }

func (stallSchedule) State(round int, v int32) model.NodeState {
	if v == 0 {
		return model.StateDown
	}
	return model.StateUp
}

func (stallSchedule) Reorder(int, int32) uint64 { return 0 }

// TestColeVishkinFaultyRejects: the faulty twin shares the clean
// entry's instance validation — every malformed instance is rejected
// before any rounds run, with the same error text.
func TestColeVishkinFaultyRejects(t *testing.T) {
	sched := model.MustParseProfile("lossy:p=0.1").New(dcycleHost(t, 8), 1)
	for _, c := range []struct {
		name string
		h    *model.Host
		ids  []int
		want string
	}{
		{"non-cycle", model.HostFromGraph(graph.Petersen()), make([]int, 10), "consistently oriented cycle"},
		{"ids-length", dcycleHost(t, 8), []int{1, 2}, "2 ids for 8 nodes"},
		{"negative-id", dcycleHost(t, 8), []int{0, 1, 2, 3, 4, 5, 6, -3}, "negative id -3"},
		{"id-overflow", dcycleHost(t, 8), []int{0, 1, 2, 3, 4, 5, 6, 1 << 62}, "exceeds the 62-bit colour lane"},
	} {
		if _, err := ColeVishkinMISFaulty(c.h, c.ids, sched); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		// The clean entry must agree (same plan, same message).
		if _, err := ColeVishkinMIS(c.h, c.ids); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: clean entry error %v does not mention %q", c.name, err, c.want)
		}
	}
}

// TestFaultyTwinsNonHalt: a schedule that stalls one node forever
// exhausts the fault slack; both faulty twins must surface the
// engine's non-halt error, wrapped with their own prefix and carrying
// the schedule's profile descriptor for reproduction.
func TestFaultyTwinsNonHalt(t *testing.T) {
	n := 8
	h := dcycleHost(t, n)
	ids := rand.New(rand.NewSource(1)).Perm(4 * n)[:n]
	_, err := ColeVishkinMISFaulty(h, ids, stallSchedule{})
	if err == nil {
		t.Fatal("stalled Cole–Vishkin halted")
	}
	for _, want := range []string{"algorithms: faulty Cole–Vishkin:", "did not halt", "[stall:node=0]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("CV error %q does not mention %q", err, want)
		}
	}
	_, err = RandomizedMatchingFaulty(model.HostFromGraph(graph.Torus(4, 4)), rand.New(rand.NewSource(2)), stallSchedule{})
	if err == nil {
		t.Fatal("stalled matching halted")
	}
	for _, want := range []string{"algorithms: faulty randomized matching:", "did not halt", "[stall:node=0]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("matching error %q does not mention %q", err, want)
		}
	}
}
