package localapprox

import "testing"

// TestFacadeEndToEnd exercises the public API exactly as the package
// documentation advertises.
func TestFacadeEndToEnd(t *testing.T) {
	g := Cycle(9)
	h := HostFromGraph(g)
	sol, err := RunPO(h, EDSOneOut(), EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := Ratio(MinEDS, g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 3.0001 {
		t.Errorf("EDS ratio %v exceeds 3 on a cycle", ratio)
	}
	if !VerifyLocally(MinEDS, g, sol) {
		t.Error("local verification failed")
	}
}

func TestFacadeLowerBound(t *testing.T) {
	h := HostFromGraph(Cycle(6))
	lb, err := CertifyPOLowerBound(h, MinVC, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if lb.BestRatio < 1 {
		t.Errorf("bound %v below 1", lb.BestRatio)
	}
}

func TestFacadeConstruction(t *testing.T) {
	c, err := SearchHomogeneous(1, 1, SearchOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CertifiedGirthFloor(); err != nil {
		t.Error(err)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	if len(AllExperiments()) < 10 {
		t.Error("experiment registry too small")
	}
}
