// Command experiments runs the full experiment suite reproducing every
// figure and theorem-as-table of the paper (see DESIGN.md for the
// index) and prints the results as text tables, or as markdown with
// -markdown (the source of EXPERIMENTS.md's tables).
//
// Usage:
//
//	experiments [-markdown] [-only E10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	only := flag.String("only", "", "run a single experiment by id (e.g. E10)")
	flag.Parse()
	if err := run(*markdown, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(markdown bool, only string) error {
	ran := 0
	for _, e := range experiments.All() {
		if only != "" && e.ID != only {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		if markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Println(tbl.String())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", only)
	}
	return nil
}
