// Command experiments runs the full experiment suite reproducing every
// figure and theorem-as-table of the paper (see DESIGN.md for the
// index) and prints the results as text tables, or as markdown with
// -markdown (the source of EXPERIMENTS.md's tables).
//
// The full sweep fans the independent experiments out over a worker
// pool (-p controls the width; -p 1 is the sequential fallback);
// results are printed in suite order either way.
//
// Usage:
//
//	experiments [-markdown] [-only E10] [-p N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/par"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	only := flag.String("only", "", "run a single experiment by id (e.g. E10)")
	parallelism := flag.Int("p", 0, "worker-pool width (0 = all CPUs, 1 = sequential)")
	flag.Parse()
	par.Set(*parallelism)
	if err := run(*markdown, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(markdown bool, only string) error {
	if only == "" {
		for _, res := range experiments.RunAll() {
			if res.Err != nil {
				return fmt.Errorf("%s (%s): %w", res.ID, res.Name, res.Err)
			}
			emit(res.Table, markdown)
		}
		return nil
	}
	for _, e := range experiments.All() {
		if e.ID != only {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		emit(tbl, markdown)
		return nil
	}
	return fmt.Errorf("no experiment matches %q", only)
}

func emit(t *experiments.Table, markdown bool) {
	if markdown {
		fmt.Print(t.Markdown())
	} else {
		fmt.Println(t.String())
	}
}
