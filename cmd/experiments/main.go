// Command experiments runs the full experiment suite reproducing every
// figure and theorem-as-table of the paper (see DESIGN.md for the
// index) and prints the results as text tables, or as markdown with
// -markdown (the source of EXPERIMENTS.md's tables).
//
// The full sweep fans the independent experiments out over a worker
// pool (-p controls the width; -p 1 is the sequential fallback);
// results are printed in suite order either way.
//
// With -host <descriptor> the host-parameterisable experiments (E1,
// E5, E12, E13) run on any family registered in internal/host, e.g.
// -host torus:12x12 or -host random-regular:d=4,n=512,seed=7; an
// unknown descriptor lists the registry. -rmax sets the radius
// ceiling of the homogeneity measurement (E5): one layered sweep
// (order.SweepMeasureAll) emits a row per radius 1..rmax.
//
// Usage:
//
//	experiments [-markdown] [-only E10] [-p N] [-host DESC] [-rmax R]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/par"
)

// maxRmax caps the per-radius homogeneity sweep: balls at larger
// radii than this swallow whole registry hosts and the table stops
// saying anything.
const maxRmax = 8

// usageError marks an error as a usage mistake (unknown name,
// out-of-range flag) rather than a failed computation, so main exits
// with the conventional status 2 and the message carries the relevant
// registry listing.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func exitWith(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	var ue usageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}

func main() {
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	only := flag.String("only", "", "run a single experiment by id (e.g. E10)")
	hostDesc := flag.String("host", "", "run the host-parameterisable experiments on this host family (e.g. torus:12x12)")
	rmax := flag.Int("rmax", experiments.DefaultRmax, "radius ceiling of the per-radius homogeneity table (E5); one layered sweep covers radii 1..rmax")
	parallelism := flag.Int("p", 0, "worker-pool width (0 = all CPUs, 1 = sequential)")
	flag.Parse()
	par.Set(*parallelism)
	if *rmax < 1 || *rmax > maxRmax {
		exitWith(usageError{fmt.Errorf("-rmax %d out of range (valid radii: 1..%d)", *rmax, maxRmax)})
	}
	if err := run(*markdown, *only, *hostDesc, *rmax); err != nil {
		exitWith(err)
	}
}

func run(markdown bool, only, hostDesc string, rmax int) error {
	if hostDesc != "" {
		return runHosted(markdown, only, hostDesc, rmax)
	}
	if only == "" {
		for _, res := range experiments.RunAll() {
			if res.Err != nil {
				return fmt.Errorf("%s (%s): %w", res.ID, res.Name, res.Err)
			}
			emit(res.Table, markdown)
		}
		return nil
	}
	for _, e := range experiments.All() {
		if e.ID != only {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		emit(tbl, markdown)
		return nil
	}
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	return usageError{fmt.Errorf("no experiment matches %q\nexperiments: %s", only, strings.Join(ids, ", "))}
}

// runHosted resolves the descriptor once and runs the host experiments
// on it (all of them, or the one selected by -only).
func runHosted(markdown bool, only, hostDesc string, rmax int) error {
	h, err := host.Parse(hostDesc)
	if err != nil {
		return usageError{err}
	}
	if only != "" {
		tbl, err := experiments.RunHosted(only, h, rmax)
		if err != nil {
			return err
		}
		emit(tbl, markdown)
		return nil
	}
	for _, e := range experiments.HostExperiments() {
		tbl, err := e.Run(h, rmax)
		if err != nil {
			return fmt.Errorf("%s (%s) on %s: %w", e.ID, e.Name, hostDesc, err)
		}
		emit(tbl, markdown)
	}
	return nil
}

func emit(t *experiments.Table, markdown bool) {
	if markdown {
		fmt.Print(t.Markdown())
	} else {
		fmt.Println(t.String())
	}
}
