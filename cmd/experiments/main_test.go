package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the experiments binary built once by TestMain.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "experiments-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building experiments: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// Usage mistakes — unknown -host descriptor, out-of-range -rmax,
// unknown -only id — exit status 2 with the relevant listing.
func TestUsageErrorsExitTwoWithListing(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad host", []string{"-host", "nosuch:3"}, "registered host families:"},
		{"bad host params", []string{"-host", "torus:6x6,bogus=1"}, "unused arguments"},
		{"rmax too big", []string{"-rmax", "99"}, "valid radii: 1..8"},
		{"rmax zero", []string{"-rmax", "0"}, "valid radii: 1..8"},
		{"bad only", []string{"-only", "E999"}, "experiments:"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(binPath, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if ee.ExitCode() != 2 {
				t.Fatalf("exit code %d, want 2\n%s", ee.ExitCode(), out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}
}
