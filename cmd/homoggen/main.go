// Command homoggen builds a homogeneous graph of Theorem 3.2 for the
// requested parameters and reports its certified properties:
// 2k-regularity, girth > 2r+1, and the measured (1−ε, r)-homogeneity.
//
// Usage:
//
//	homoggen -k 2 -r 1 -eps 0.25 [-seed 42] [-samples 200] [-scan 4096]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/group"
	"repro/internal/homog"
)

func main() {
	k := flag.Int("k", 1, "number of generators (graph is 2k-regular)")
	r := flag.Int("r", 1, "locality radius (girth will exceed 2r+1)")
	eps := flag.Float64("eps", 0.25, "homogeneity slack: the graph is (1-eps, r)-homogeneous")
	seed := flag.Int64("seed", 42, "search seed")
	samples := flag.Int("samples", 200, "Monte-Carlo samples when |H| is too large to scan")
	scan := flag.Int("scan", 4096, "full-scan budget in nodes")
	flag.Parse()
	if err := run(*k, *r, *eps, *seed, *samples, *scan); err != nil {
		fmt.Fprintln(os.Stderr, "homoggen:", err)
		os.Exit(1)
	}
}

func run(k, r int, eps float64, seed int64, samples, scan int) error {
	c, err := homog.Search(k, r, homog.SearchOptions{Seed: seed})
	if err != nil {
		return err
	}
	floor, err := c.CertifiedGirthFloor()
	if err != nil {
		return err
	}
	m := c.MForEpsilon(eps)
	fam, err := group.NewFamily(c.Level, m)
	if err != nil {
		return err
	}
	fmt.Printf("construction: level i=%d, %d generator(s), %d attempt(s)\n", c.Level, len(c.Gens), c.Attempts)
	for i, g := range c.Gens {
		fmt.Printf("  s%d = %s\n", i, group.EncodeElem(g))
	}
	fmt.Printf("girth: certified > %d (reduced-word enumeration in W_%d)\n", floor-1, c.Level)
	fmt.Printf("graph: C(H_%d(mod %d), S), 2k = %d regular, |H| = %s\n", c.Level, m, 2*k, fam.Order().String())
	fmt.Printf("analytic homogeneity bound: ((m-2r)/m)^d = %.4f >= 1-eps = %.4f\n", c.InnerFraction(m), 1-eps)

	if ord := fam.Order(); ord.IsInt64() && ord.Int64() <= int64(scan) {
		rep, err := c.HomogeneityExact(m, scan)
		if err != nil {
			return err
		}
		fmt.Printf("exact scan: alpha = %.4f (%d/%d tau*-typed), %d type(s), girth %s\n",
			rep.Alpha, rep.TauCount, rep.N, rep.TypeCount, girthStr(rep.Girth))
	} else {
		rng := rand.New(rand.NewSource(seed))
		rep, err := c.HomogeneitySample(m, samples, rng)
		if err != nil {
			return err
		}
		fmt.Printf("sampled (lazy, %d samples): alpha ~= %.4f, all interior samples tau*: %v\n",
			rep.Samples, rep.Alpha, rep.InteriorAllTau)
	}
	return nil
}

func girthStr(g int) string {
	if g == -1 {
		return "not found within horizon"
	}
	return fmt.Sprint(g)
}
