// Command localapproxd serves the repo's simulation and measurement
// pipeline over HTTP/JSON: homogeneity sweeps, engine workloads (clean
// or under fault profiles), and the descriptor registries — hardened
// with admission control, per-request deadlines, panic isolation, a
// content-addressed result cache, and SIGTERM graceful drain. With
// -jobs it also runs the durable asynchronous job subsystem: jobs
// checkpoint to disk, survive crashes (incomplete jobs resume from
// their latest valid snapshot on restart), and retry with backoff.
//
// Usage:
//
//	localapproxd [-addr :8347] [-workers N] [-queue N]
//	             [-deadline 30s] [-max-deadline 2m] [-drain 30s]
//	             [-cache 4096] [-p N]
//	             [-jobs DIR] [-job-workers N] [-job-queue N]
//	             [-job-checkpoint-every N] [-job-soft-deadline D]
//	             [-job-retries N] [-log text|json]
//
// The process exits 0 after a clean drain and 1 if the drain deadline
// expires with connections still open. On SIGTERM every in-flight job
// is checkpointed before exit, so a restart resumes where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/job"
	"repro/internal/par"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "max concurrently computing requests (0 = default 2)")
	queue := flag.Int("queue", 0, "max requests queued for a worker slot (0 = default 8)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = 30s)")
	maxDeadline := flag.Duration("max-deadline", 0, "upper clamp on deadline_ms (0 = 2m)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM")
	cacheEntries := flag.Int("cache", 0, "result-cache entry cap (0 = default 4096)")
	procs := flag.Int("p", 0, "engine parallelism knob (0 = all cores)")
	jobsDir := flag.String("jobs", "", "job directory; enables the durable /v1/jobs subsystem")
	jobWorkers := flag.Int("job-workers", 0, "job worker pool size (0 = default 2)")
	jobQueue := flag.Int("job-queue", 0, "job queue depth beyond the workers (0 = default 16)")
	jobEvery := flag.Int("job-checkpoint-every", 0, "default checkpoint cadence in rounds/assignments (0 = default 8)")
	jobSoft := flag.Duration("job-soft-deadline", 0, "soft deadline per job attempt before checkpoint+reschedule (0 = off)")
	jobRetries := flag.Int("job-retries", 0, "default transient-failure retries per job (0 = default 2)")
	logMode := flag.String("log", "", "structured request logging: text or json (empty = off)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "localapproxd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *procs > 0 {
		par.Set(*procs)
	}

	var logger *slog.Logger
	switch *logMode {
	case "":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "localapproxd: -log wants text or json, got %q\n", *logMode)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		Queue:           *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CacheEntries:    *cacheEntries,
		Logger:          logger,
	})

	var jm *job.Manager
	if *jobsDir != "" {
		var err error
		jm, err = job.Open(job.Config{
			Dir:             *jobsDir,
			Workers:         *jobWorkers,
			Queue:           *jobQueue,
			CheckpointEvery: *jobEvery,
			SoftDeadline:    *jobSoft,
			MaxRetries:      *jobRetries,
			Logger:          logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "localapproxd: jobs: %v\n", err)
			os.Exit(1)
		}
		srv.AttachJobs(jm)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "localapproxd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "localapproxd: serving on %s (workers=%d, par=%d, jobs=%q)\n",
		ln.Addr(), *workers, par.N(), *jobsDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "localapproxd: serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "localapproxd: %v: draining (deadline %s)\n", sig, *drain)
	}

	// Graceful drain: stop advertising readiness, let http.Server stop
	// accepting and wait for in-flight requests, then checkpoint and
	// stop the job pool so a restart resumes from the snapshots.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "localapproxd: drain deadline expired: %v\n", err)
		hs.Close()
		os.Exit(1)
	}
	if jm != nil {
		jm.Drain(ctx)
	}
	fmt.Fprintln(os.Stderr, "localapproxd: drained, bye")
}
