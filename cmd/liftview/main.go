// Command liftview renders the paper's structural objects as Graphviz
// DOT: views (Fig. 4), complete trees T* (Fig. 5), cyclic lifts
// (Fig. 3), and homogeneous lifts (Fig. 7).
//
// Usage:
//
//	liftview -what view -n 6 -r 2        # view of the directed n-cycle
//	liftview -what tstar -l 2 -r 2       # complete tree T*
//	liftview -what cyclic -n 4 -l 3      # connected cyclic l-lift of C_n
//	liftview -what homog -n 5 -m 4       # homogeneous lift H(m) × C_n
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/homog"
	"repro/internal/lift"
	"repro/internal/view"
)

func main() {
	what := flag.String("what", "view", "object: view|tstar|cyclic|homog")
	n := flag.Int("n", 6, "base cycle length")
	r := flag.Int("r", 2, "view radius")
	l := flag.Int("l", 2, "alphabet size (tstar) or lift degree (cyclic)")
	m := flag.Int("m", 4, "homogeneous modulus")
	flag.Parse()
	if err := run(*what, *n, *r, *l, *m); err != nil {
		fmt.Fprintln(os.Stderr, "liftview:", err)
		os.Exit(1)
	}
}

func run(what string, n, r, l, m int) error {
	switch what {
	case "view":
		d := directedCycle(n)
		t := view.Build[int](d, 0, r)
		vd, walks, _ := t.ToDigraph(1)
		fmt.Print(vd.DOT(fmt.Sprintf("view_C%d_r%d", n, r), func(v int) string {
			if len(walks[v]) == 0 {
				return "λ"
			}
			return view.Key(walks[v])
		}))
	case "tstar":
		t := view.Complete(l, r)
		vd, walks, _ := t.ToDigraph(l)
		fmt.Print(vd.DOT(fmt.Sprintf("Tstar_L%d_r%d", l, r), func(v int) string {
			if len(walks[v]) == 0 {
				return "λ"
			}
			return view.Key(walks[v])
		}))
	case "cyclic":
		d := directedCycle(n)
		h, _, err := lift.ConnectedCyclic(d, l, 0, 1, 0)
		if err != nil {
			return err
		}
		fmt.Print(h.DOT(fmt.Sprintf("cyclic_%d_lift_C%d", l, n), func(v int) string {
			return fmt.Sprintf("%d/%d", v%n, v/n)
		}))
	case "homog":
		c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
		if err != nil {
			return err
		}
		lr, err := core.BuildHomogeneousLift(c, directedCycle(n), m, 1<<15)
		if err != nil {
			return err
		}
		fmt.Print(lr.Host.D.DOT(fmt.Sprintf("homog_lift_H%d_C%d", m, n), func(v int) string {
			p := lr.Pairs[v]
			return fmt.Sprintf("%s|%d", p.H, p.G)
		}))
	default:
		return fmt.Errorf("unknown object %q", what)
	}
	return nil
}

func directedCycle(n int) *digraph.Digraph {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	return b.Build()
}
