package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the localsim binary built once by TestMain.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "localsim-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "localsim")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building localsim: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// Every usage mistake — unknown name or out-of-range flag on -host,
// -faults, -algo, -alg, -graph, -rmax — exits status 2 and prints the
// relevant registry or grammar listing, so the error message is
// enough to repair the invocation.
func TestUsageErrorsExitTwoWithListing(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad host", []string{"-host", "nosuch:3"}, "registered host families:"},
		{"bad host params", []string{"-host", "cycle:12,bogus=1"}, "unused arguments"},
		{"bad faults", []string{"-algo", "matching", "-n", "12", "-faults", "nosuch:p=1"}, "fault profiles:"},
		{"faults without algo", []string{"-faults", "lossy:p=0.1"}, "-faults needs -algo"},
		{"bad algo", []string{"-algo", "nosuch", "-n", "12"}, "scale workloads:"},
		{"bad alg", []string{"-alg", "nosuch"}, "algorithms:"},
		{"bad graph", []string{"-graph", "nosuch"}, "graph families:"},
		{"rmax too big", []string{"-rmax", "99"}, "valid radii: 1..8"},
		{"rmax zero", []string{"-rmax", "0"}, "valid radii: 1..8"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(binPath, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if ee.ExitCode() != 2 {
				t.Fatalf("exit code %d, want 2\n%s", ee.ExitCode(), out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// A valid invocation still exits 0.
func TestValidInvocationExitsZero(t *testing.T) {
	out, err := exec.Command(binPath, "-alg", "eds-one-out", "-graph", "cycle", "-n", "12").CombinedOutput()
	if err != nil {
		t.Fatalf("valid run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ratio") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
