// Command localsim runs a named local algorithm on a named graph
// family in one of the three models and reports solution size,
// optimum, and approximation ratio.
//
// Usage:
//
//	localsim -alg eds-one-out -graph cycle -n 12 [-model po] [-seed 1]
//	localsim -alg eds-all -host torus:6x6
//
// -host accepts any descriptor registered in internal/host (e.g.
// grid3d:3x3x3, margulis-expander:n=6, lift:cycle:9,l=3); it overrides
// -graph/-n/-d, and an unknown descriptor lists the registry.
//
// -rmax R additionally prints the instance's per-radius homogeneity
// table (Def. 3.1) for radii 1..R, measured by ONE layered sweep
// (order.SweepMeasureAll): a single BFS per vertex, canonicalised at
// each layer boundary. A radius outside 1..8 is rejected with the
// valid range.
//
// Algorithms: eds-one-out, eds-all, ec-one-edge, ds-all, vc-all,
// vc-packing (round-based PO), id-greedy-eds, id-nonmin-vc,
// oi-smallest-eds, oi-nonmin-vc, cole-vishkin (directed cycles only).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/algorithms"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

// maxRmax caps the homogeneity radius sweep (see cmd/experiments).
const maxRmax = 8

func main() {
	alg := flag.String("alg", "eds-one-out", "algorithm name")
	graphName := flag.String("graph", "cycle", "graph family: cycle|dcycle|petersen|torus|regular|circulant")
	hostDesc := flag.String("host", "", "registry host descriptor (overrides -graph; e.g. torus:6x6)")
	n := flag.Int("n", 12, "instance size")
	d := flag.Int("d", 3, "degree for -graph regular")
	seed := flag.Int64("seed", 1, "seed for random graphs and identifiers")
	rmax := flag.Int("rmax", 0, "also print the per-radius homogeneity table for radii 1..rmax (one layered sweep; unset = off)")
	flag.Parse()
	rmaxSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rmax" {
			rmaxSet = true
		}
	})
	if rmaxSet && (*rmax < 1 || *rmax > maxRmax) {
		fmt.Fprintf(os.Stderr, "localsim: -rmax %d out of range (valid radii: 1..%d)\n", *rmax, maxRmax)
		os.Exit(1)
	}
	if err := run(*alg, *graphName, *hostDesc, *n, *d, *seed, *rmax); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

func run(algName, graphName, hostDesc string, n, d int, seed int64, rmax int) error {
	rng := rand.New(rand.NewSource(seed))
	var (
		h   *model.Host
		err error
	)
	if hostDesc != "" {
		var rh *host.Host
		rh, err = host.Parse(hostDesc)
		if err != nil {
			return err
		}
		graphName = rh.Desc
		if rh.D != nil {
			h = &model.Host{D: rh.D, G: rh.G}
		} else {
			h = model.HostFromGraph(rh.G)
		}
	} else {
		h, err = buildHost(graphName, n, d, rng)
	}
	if err != nil {
		return err
	}
	ids := rng.Perm(8 * h.G.N())[:h.G.N()]
	rank := order.Identity(h.G.N())

	var (
		sol  *model.Solution
		prob problems.Problem
	)
	switch algName {
	case "eds-one-out":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunPO(h, algorithms.EDSOneOut(), model.EdgeKind)
	case "eds-all":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunPO(h, algorithms.EDSAll(), model.EdgeKind)
	case "ec-one-edge":
		prob = problems.MinEdgeCover{}
		sol, err = model.RunPO(h, algorithms.ECOneEdge(), model.EdgeKind)
	case "ds-all":
		prob = problems.MinDominatingSet{}
		sol, err = model.RunPO(h, algorithms.DSAll(), model.VertexKind)
	case "vc-all":
		prob = problems.MinVertexCover{}
		sol, err = model.RunPO(h, algorithms.VCAll(), model.VertexKind)
	case "vc-packing":
		prob = problems.MinVertexCover{}
		var res *algorithms.VCEdgePackingResult
		res, err = algorithms.VCEdgePacking(h)
		if err == nil {
			sol = res.Cover
			fmt.Printf("bargaining rounds: %d\n", res.Rounds)
		}
	case "id-greedy-eds":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunID(h, ids, algorithms.IDGreedyEDS(), model.EdgeKind)
	case "id-nonmin-vc":
		prob = problems.MinVertexCover{}
		sol, err = model.RunID(h, ids, algorithms.IDNonMinimumVC(), model.VertexKind)
	case "oi-smallest-eds":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunOI(h, rank, algorithms.OISmallestNeighborEDS(), model.EdgeKind)
	case "oi-nonmin-vc":
		prob = problems.MinVertexCover{}
		sol, err = model.RunOI(h, rank, algorithms.OILocalMinJoinsVC(), model.VertexKind)
	case "cole-vishkin":
		prob = problems.MaxIndependentSet{}
		var res *algorithms.ColeVishkinResult
		res, err = algorithms.ColeVishkinMIS(h, ids)
		if err == nil {
			sol = res.MIS
			fmt.Printf("rounds: %d (O(log* n) colour reduction + O(1) cleanup)\n", res.Rounds)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algName)
	}
	if err != nil {
		return err
	}
	if err := prob.Feasible(h.G, sol); err != nil {
		return fmt.Errorf("solution infeasible: %w", err)
	}
	opt, err := prob.Optimum(h.G)
	if err != nil {
		return err
	}
	ratio, err := problems.Ratio(prob, h.G, sol)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s (n=%d, m=%d, Δ=%d)\n", graphName, h.G.N(), h.G.M(), h.G.MaxDegree())
	fmt.Printf("problem: %s   |solution| = %d   optimum = %d   ratio = %.4f\n",
		prob.Name(), sol.Size(), opt, ratio)
	fmt.Printf("locally verified (PO-checkable): %v\n", problems.VerifyLocally(prob, h.G, sol))
	if rmax >= 1 {
		fmt.Printf("homogeneity under the vertex-index order (one layered sweep, radii 1..%d):\n", rmax)
		fmt.Printf("  %-3s %-10s %-7s %s\n", "r", "max α", "types", "majority count")
		for r, hm := range order.SweepMeasureAll(h.G, rank, rmax) {
			fmt.Printf("  %-3d %-10.4f %-7d %d/%d\n", r+1, hm.Alpha, len(hm.Counts), hm.Count, hm.N)
		}
	}
	return nil
}

func buildHost(name string, n, d int, rng *rand.Rand) (*model.Host, error) {
	switch name {
	case "cycle":
		g := graph.Cycle(n)
		orient, err := digraph.EulerianOrientation(g)
		if err != nil {
			return nil, err
		}
		return model.NewHost(digraph.FromPorts(g, orient).D)
	case "dcycle":
		b := digraph.NewBuilder(n, 1)
		for i := 0; i < n; i++ {
			b.MustAddArc(i, (i+1)%n, 0)
		}
		return model.NewHost(b.Build())
	case "petersen":
		return model.HostFromGraph(graph.Petersen()), nil
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		g := graph.Torus(side, side)
		orient, err := digraph.EulerianOrientation(g)
		if err != nil {
			return nil, err
		}
		return model.NewHost(digraph.FromPorts(g, orient).D)
	case "regular":
		return model.HostFromGraph(graph.RandomRegular(n, d, rng)), nil
	case "circulant":
		return model.HostFromGraph(graph.Circulant(n, 1, 2)), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}
