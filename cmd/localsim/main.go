// Command localsim runs a named local algorithm on a named graph
// family in one of the three models and reports solution size,
// optimum, and approximation ratio.
//
// Usage:
//
//	localsim -alg eds-one-out -graph cycle -n 12 [-model po] [-seed 1]
//	localsim -alg eds-all -host torus:6x6
//
// -host accepts any descriptor registered in internal/host (e.g.
// grid3d:3x3x3, margulis-expander:n=6, lift:cycle:9,l=3); it overrides
// -graph/-n/-d, and an unknown descriptor lists the registry.
//
// -rmax R additionally prints the instance's per-radius homogeneity
// table (Def. 3.1) for radii 1..R, measured by ONE layered sweep
// (order.SweepMeasureAll): a single BFS per vertex, canonicalised at
// each layer boundary. A radius outside 1..8 is rejected with the
// valid range.
//
// Algorithms: eds-one-out, eds-all, ec-one-edge, ds-all, vc-all,
// vc-packing (round-based PO), id-greedy-eds, id-nonmin-vc,
// oi-smallest-eds, oi-nonmin-vc, cole-vishkin (directed cycles only).
//
// -algo switches to SCALE MODE: the named workload runs through the
// batched round engine (model.Engine) on a host of -n nodes (or
// -host), reporting rounds, solution size and wall time, and skipping
// the exact optimum — the only super-linear step — so million-node
// runs finish in seconds:
//
//	localsim -algo cole-vishkin -n 1000000
//	localsim -algo matching -host torus:1000x1000
//	localsim -algo gather -n 100000 -rmax 3
//
// Scale-mode workloads: cole-vishkin (ID MIS on the directed n-cycle,
// typed word-lane engine), matching (one round of §6.5 randomized
// mutual proposals, typed word-lane engine), gather (full-information
// view gathering, radius -rmax or 2). An unknown -algo value lists
// the workload registry, like -host and -faults.
//
// -faults runs the scale-mode workload under a fault schedule
// (internal/model profiles): messages dropped/duplicated/reordered
// and nodes crashed or churned, deterministically in -seed, with the
// injected-fault counts and survivor-safety checks reported instead
// of the clean feasibility guarantee:
//
//	localsim -algo cole-vishkin -n 100000 -faults lossy:p=0.05
//	localsim -algo matching -host torus:400x250 -faults crash:f=100,by=8
//
// An unknown -faults descriptor lists the valid profile grammar, and
// -faults without -algo is rejected (fault schedules run on the
// engine's message plane only).
//
// -checkpoint DIR makes scale-mode word-lane workloads (cole-vishkin,
// matching, flood) snapshot the engine into DIR every -checkpoint-every
// rounds (content-addressed, hash-verified files), and -resume restarts
// an interrupted run from the latest valid snapshot in DIR instead of
// from round 0 — the same durable format the localapproxd job
// subsystem uses, so results are byte-for-byte what the uninterrupted
// run would have printed:
//
//	localsim -algo flood -n 4096 -rounds 5000 -checkpoint /tmp/ck
//	localsim -algo flood -n 4096 -rounds 5000 -checkpoint /tmp/ck -resume
//
// flood (FloodMax leader election for -rounds rounds) is the
// long-horizon workload built for this: each round is cheap, there are
// many of them, and convergence is checkable at any prefix.
//
// -shards P runs cole-vishkin or matching on the sharded engine
// (model.ShardedEngine, DESIGN.md §12): the host is partitioned into P
// contiguous shards, each with its own CSR slice, word-lane arenas and
// workers, and cross-shard arcs drain through a compact exchange buffer
// at the round barrier. Implicit shard-capable families (cycle, dcycle,
// torus, shift-regular) generate their topology shard-locally, so
// descriptors past the flat int32 capacity run in bounded resident
// memory:
//
//	localsim -algo cole-vishkin -host dcycle:100000000 -shards 16
//	localsim -algo matching -host cycle:100000000 -shards 16
//	localsim -algo cole-vishkin -n 1000000 -shards 4 -faults lossy:p=0.01
//
// P=1 sharded output is byte-identical to the flat engine; fault
// coordinates stay global, so faulty sharded runs degrade identically
// too (they need a materialisable host for the schedule constructor).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/ckpt"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
	"repro/internal/view"
)

// maxRmax caps the homogeneity radius sweep (see cmd/experiments).
const maxRmax = 8

// usageError marks an error as a usage mistake — an unknown name or
// out-of-range flag, as opposed to a failed computation — so main can
// exit with the conventional status 2. Every usage error carries the
// relevant registry or grammar listing, making the message
// self-repairing: the user's next invocation can be pasted from it.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// usagef formats a usage error.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitWith prints the error and exits 2 for usage errors, 1 otherwise.
func exitWith(err error) {
	fmt.Fprintln(os.Stderr, "localsim:", err)
	var ue usageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}

func main() {
	alg := flag.String("alg", "eds-one-out", "algorithm name")
	graphName := flag.String("graph", "cycle", "graph family: cycle|dcycle|petersen|torus|regular|circulant")
	hostDesc := flag.String("host", "", "registry host descriptor (overrides -graph; e.g. torus:6x6)")
	n := flag.Int("n", 12, "instance size")
	d := flag.Int("d", 3, "degree for -graph regular")
	seed := flag.Int64("seed", 1, "seed for random graphs and identifiers")
	rmax := flag.Int("rmax", 0, "also print the per-radius homogeneity table for radii 1..rmax (one layered sweep; unset = off)")
	algo := flag.String("algo", "", "scale mode: run this engine workload (cole-vishkin|matching|gather|flood) at -n / -host, skipping exact optima")
	faults := flag.String("faults", "", "scale mode: run under this fault profile (e.g. lossy:p=0.05, crash:f=100,by=8); unknown descriptors list the grammar")
	rounds := flag.Int("rounds", 0, "scale mode: flood horizon in rounds (flood only; default n)")
	ckptDir := flag.String("checkpoint", "", "scale mode: snapshot the engine into this directory (word-lane workloads)")
	ckptEvery := flag.Int("checkpoint-every", 64, "scale mode: rounds between snapshots (with -checkpoint)")
	resume := flag.Bool("resume", false, "scale mode: resume from the latest valid snapshot in -checkpoint")
	shards := flag.Int("shards", 0, "scale mode: run cole-vishkin/matching on the sharded engine with this many shards (implicit host generation; hosts may exceed the flat int32 capacity)")
	flag.Parse()
	rmaxSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rmax" {
			rmaxSet = true
		}
	})
	if rmaxSet && (*rmax < 1 || *rmax > maxRmax) {
		exitWith(usagef("-rmax %d out of range (valid radii: 1..%d)", *rmax, maxRmax))
	}
	var prof *model.Profile
	if *faults != "" {
		if *algo == "" {
			exitWith(usagef("-faults needs -algo (fault schedules run on the engine's message plane; scale mode only)"))
		}
		var err error
		prof, err = model.ParseProfile(*faults)
		if err != nil {
			exitWith(usageError{err})
		}
	}
	if *ckptDir == "" {
		if *resume {
			exitWith(usagef("-resume needs -checkpoint DIR (nothing to resume from)"))
		}
		if *ckptEvery != 64 {
			exitWith(usagef("-checkpoint-every needs -checkpoint DIR"))
		}
	} else {
		if *algo == "" {
			exitWith(usagef("-checkpoint needs -algo (engine snapshots exist in scale mode only)"))
		}
		if *ckptEvery < 1 {
			exitWith(usagef("-checkpoint-every %d out of range (want >= 1)", *ckptEvery))
		}
	}
	if *shards != 0 {
		if *algo == "" {
			exitWith(usagef("-shards needs -algo (the sharded engine runs scale-mode workloads only)"))
		}
		if *shards < 1 {
			exitWith(usagef("-shards %d out of range (want >= 1)", *shards))
		}
		if *ckptDir != "" {
			exitWith(usagef("-checkpoint does not support -shards (the sharded plane has no snapshot codec yet)"))
		}
		if err := runScaleSharded(*algo, *hostDesc, *n, *seed, *shards, prof); err != nil {
			exitWith(err)
		}
		return
	}
	if *algo != "" {
		ck := ckptSpec{dir: *ckptDir, every: *ckptEvery, resume: *resume}
		if err := runScale(*algo, *hostDesc, *n, *seed, *rmax, *rounds, prof, ck); err != nil {
			exitWith(err)
		}
		return
	}
	if err := run(*alg, *graphName, *hostDesc, *n, *d, *seed, *rmax); err != nil {
		exitWith(err)
	}
}

// resolveHost parses a registry descriptor into a model host (using
// the family's own labelling when it has one).
func resolveHost(hostDesc string) (*model.Host, string, error) {
	rh, err := host.Parse(hostDesc)
	if err != nil {
		return nil, "", usageError{err}
	}
	if rh.D != nil {
		return &model.Host{D: rh.D, G: rh.G}, rh.Desc, nil
	}
	return model.HostFromGraph(rh.G), rh.Desc, nil
}

// scaleWorkloads is the registry of engine scale-mode workloads; an
// unknown -algo value lists it, in the same self-repairing usage
// style as the host registry and the fault-profile grammar.
var scaleWorkloads = []struct{ name, doc string }{
	{"cole-vishkin", "ID-model MIS on the directed n-cycle (typed word-lane engine)"},
	{"matching", "one round of §6.5 randomized mutual proposals (typed word-lane engine)"},
	{"gather", "full-information view gathering, radius -rmax or 2"},
	{"flood", "FloodMax leader election for -rounds rounds (long-horizon; checkpointable)"},
}

// ckptSpec carries the -checkpoint/-checkpoint-every/-resume flags into
// scale mode.
type ckptSpec struct {
	dir    string
	every  int
	resume bool
}

// engine builds the scale-mode word engine: plain when -checkpoint is
// unset, snapshotting into the store every ck.every rounds when set,
// and resuming from the latest valid snapshot with -resume. Gather has
// no word-lane codec, so it rejects -checkpoint.
func (ck ckptSpec) engine(h *model.Host) (*model.WordEngine, error) {
	e := model.TypedOn[uint64](model.NewEngine(h))
	if ck.dir == "" {
		return e, nil
	}
	store, err := ckpt.NewStore(ck.dir, "localsim")
	if err != nil {
		return nil, err
	}
	e = e.WithCheckpoints(&model.Checkpointer{Every: ck.every, Sink: func(s *model.Snapshot) error {
		name, err := store.Write(uint64(s.Round), model.SnapshotKind, s.Encode())
		if err == nil {
			fmt.Fprintf(os.Stderr, "localsim: checkpoint round %d -> %s\n", s.Round, name)
		}
		return err
	}})
	if !ck.resume {
		return e, nil
	}
	seq, payload, ok, err := store.LatestValid(model.SnapshotKind)
	if err != nil {
		return nil, err
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "localsim: no valid snapshot in %s, starting fresh\n", ck.dir)
		return e, nil
	}
	snap, err := model.DecodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot decode: %w", err)
	}
	fmt.Fprintf(os.Stderr, "localsim: resuming from round %d\n", seq)
	return e.Resume(snap), nil
}

// describeScaleWorkloads renders the workload registry as a usage
// listing, appended to unknown -algo errors.
func describeScaleWorkloads() string {
	var sb strings.Builder
	sb.WriteString("scale workloads:\n")
	for _, w := range scaleWorkloads {
		fmt.Fprintf(&sb, "  %-14s %s\n", w.name, w.doc)
	}
	return sb.String()
}

// runScale is the engine scale mode: workloads that stay linear in the
// host size, so -n 1000000 is a routine run. Exact optima and global
// ratio reporting are skipped; feasibility is still verified in full.
// With a fault profile the workload runs on the faulty message plane
// instead, and the report swaps the feasibility guarantee for the
// injected-fault counts and the survivor-safety checks.
func runScale(algo, hostDesc string, n int, seed int64, rmax, rounds int, prof *model.Profile, ck ckptSpec) error {
	known := false
	for _, w := range scaleWorkloads {
		if w.name == algo {
			known = true
			break
		}
	}
	if !known {
		return usagef("unknown scale workload %q\n%s", algo, describeScaleWorkloads())
	}
	if ck.dir != "" && algo == "gather" {
		return usagef("-checkpoint does not support gather (untyped view state has no snapshot codec)")
	}
	if rounds != 0 && algo != "flood" {
		return usagef("-rounds is the flood horizon; %s derives its own round count", algo)
	}
	rng := rand.New(rand.NewSource(seed))
	var (
		h    *model.Host
		desc string
		err  error
	)
	switch {
	case hostDesc != "":
		h, desc, err = resolveHost(hostDesc)
	case algo == "cole-vishkin":
		desc = "dcycle"
		h, err = buildHost("dcycle", n, 0, rng)
	default:
		desc = "cycle"
		h, err = buildHost("cycle", n, 0, rng)
	}
	if err != nil {
		return err
	}
	n = h.G.N()
	var sched model.Schedule
	if prof != nil {
		sched = prof.New(h, seed)
		fmt.Printf("scale mode: %s on %s (n=%d, m=%d) under faults %s\n", algo, desc, n, h.G.M(), prof.Desc)
	} else {
		fmt.Printf("scale mode: %s on %s (n=%d, m=%d)\n", algo, desc, n, h.G.M())
	}
	start := time.Now()
	switch algo {
	case "flood":
		if rounds < 1 {
			rounds = n
		}
		ids := rng.Perm(8 * n)[:n]
		e, err := ck.engine(h)
		if err != nil {
			return err
		}
		var res *algorithms.FloodMaxResult
		if prof != nil {
			res, err = algorithms.FloodMaxFaultyOn(e, h, ids, rounds, sched)
		} else {
			res, err = algorithms.FloodMaxOn(e, h, ids, rounds)
		}
		if err != nil {
			return err
		}
		if prof != nil {
			fmt.Printf("rounds: %d   leader: %d   converged@: %d   crashed: %d   dropped: %d   wall: %s\n",
				res.Rounds, res.Leader, res.Converged, res.Report.NumCrashed, res.Report.Dropped,
				time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("rounds: %d   leader: %d   converged@: %d   wall: %s\n",
				res.Rounds, res.Leader, res.Converged, time.Since(start).Round(time.Millisecond))
		}
	case "cole-vishkin":
		if !h.D.IsRegularDigraph(1) {
			return fmt.Errorf("cole-vishkin needs a consistently oriented cycle host (out- and in-degree 1)")
		}
		ids := rng.Perm(8 * n)[:n]
		e, err := ck.engine(h)
		if err != nil {
			return err
		}
		if prof != nil {
			res, err := algorithms.ColeVishkinMISFaultyOn(e, h, ids, sched)
			if err != nil {
				return err
			}
			rep := res.Report
			fmt.Printf("rounds: %d   |MIS| = %d   crashed: %d   dropped: %d   violations: %d   uncovered: %d   wall: %s\n",
				res.Rounds, res.MIS.Size(), rep.NumCrashed, rep.Dropped,
				res.Violations, res.Uncovered, time.Since(start).Round(time.Millisecond))
			return nil
		}
		res, err := algorithms.ColeVishkinMISOn(e, h, ids)
		if err != nil {
			return err
		}
		if err := (problems.MaxIndependentSet{}).Feasible(h.G, res.MIS); err != nil {
			return fmt.Errorf("solution infeasible: %w", err)
		}
		fmt.Printf("rounds: %d   |MIS| = %d   |MIS|/n = %.4f   feasible: yes   wall: %s\n",
			res.Rounds, res.MIS.Size(), float64(res.MIS.Size())/float64(n), time.Since(start).Round(time.Millisecond))
	case "matching":
		e, err := ck.engine(h)
		if err != nil {
			return err
		}
		if prof != nil {
			res, err := algorithms.RandomizedMatchingFaultyOn(e, h, rng, sched)
			if err != nil {
				return err
			}
			rep := res.Report
			fmt.Printf("rounds: 2   |M| = %d   crashed: %d   dropped: %d   conflicts: %d   wall: %s\n",
				res.Matching.Size(), rep.NumCrashed, rep.Dropped, res.Conflicts,
				time.Since(start).Round(time.Millisecond))
			return nil
		}
		sol, err := algorithms.RandomizedMatchingOn(e, h, rng)
		if err != nil {
			return err
		}
		if err := (problems.MaxMatching{}).Feasible(h.G, sol); err != nil {
			return fmt.Errorf("solution infeasible: %w", err)
		}
		fmt.Printf("rounds: 2   |M| = %d   |M|/n = %.4f   feasible: yes   wall: %s\n",
			sol.Size(), float64(sol.Size())/float64(n), time.Since(start).Round(time.Millisecond))
	case "gather":
		r := 2
		if rmax >= 1 {
			r = rmax
		}
		if prof != nil {
			states, rounds, rep, err := model.RunRoundsStatesFaulty(h, nil, model.GatherViews(r), r+2+256, sched)
			if err != nil {
				return err
			}
			types := map[*view.Tree]bool{}
			for v, st := range states {
				if rep.CrashedNode(v) {
					continue
				}
				types[st.(*model.GatherState).Tree] = true
			}
			fmt.Printf("rounds: %d   radius-%d view types: %d   crashed: %d   dropped: %d   wall: %s\n",
				rounds, r, len(types), rep.NumCrashed, rep.Dropped, time.Since(start).Round(time.Millisecond))
			return nil
		}
		states, rounds, err := model.RunRoundsStates(h, nil, model.GatherViews(r), r+2)
		if err != nil {
			return err
		}
		types := map[*view.Tree]bool{}
		for _, st := range states {
			types[st.(*model.GatherState).Tree] = true
		}
		fmt.Printf("rounds: %d   radius-%d view types: %d   wall: %s\n",
			rounds, r, len(types), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runScaleSharded is the sharded scale mode: cole-vishkin and matching
// on model.ShardedEngine, with the host generated shard-locally from an
// implicit source when the family has one (so descriptors past the flat
// int32 capacity — dcycle:100000000 and beyond — run in bounded resident
// memory) and adapted from the materialised registry host otherwise.
// Fault schedules keep global (seed, round, slot) coordinates, so a
// sharded faulty run degrades byte-identically to the flat engine; they
// need a materialisable host, since the profile constructor does.
func runScaleSharded(algo, hostDesc string, n int, seed int64, shards int, prof *model.Profile) error {
	if algo != "cole-vishkin" && algo != "matching" {
		return usagef("-shards supports cole-vishkin and matching only (got %q)", algo)
	}
	if hostDesc == "" {
		fam := "cycle"
		if algo == "cole-vishkin" {
			fam = "dcycle"
		}
		hostDesc = fmt.Sprintf("%s:%d", fam, n)
	}
	src, err := host.ParseShard(hostDesc)
	if err != nil {
		// Not an implicit family: any materialisable registry host
		// still runs sharded through the adapter source.
		h, desc, herr := resolveHost(hostDesc)
		if herr != nil {
			return usagef("%v\n(no implicit shard source either: %v)", herr, err)
		}
		src, hostDesc = model.SourceOf(h), desc
	}
	var sched model.Schedule
	if prof != nil {
		h, err := model.MaterializeSource(src)
		if err != nil {
			return fmt.Errorf("-faults with -shards needs a materialisable host (fault schedules hash global coordinates from a flat host): %w", err)
		}
		sched = prof.New(h, seed)
		fmt.Printf("sharded scale mode: %s on %s (n=%d, P=%d) under faults %s\n", algo, hostDesc, src.N(), shards, prof.Desc)
	} else {
		fmt.Printf("sharded scale mode: %s on %s (n=%d, P=%d)\n", algo, hostDesc, src.N(), shards)
	}
	se, err := model.NewShardedEngine(src, shards)
	if err != nil {
		return err
	}
	start := time.Now()
	nTotal := src.N()
	switch algo {
	case "cole-vishkin":
		idf := model.SeededIDs(nTotal, seed)
		maxID := int(nTotal - 1)
		var res *algorithms.ShardedCVResult
		if sched != nil {
			res, err = algorithms.ColeVishkinMISShardedFaulty(se, idf, maxID, sched)
		} else {
			res, err = algorithms.ColeVishkinMISSharded(se, idf, maxID)
		}
		if err != nil {
			return err
		}
		if sched != nil {
			rep := res.Report
			fmt.Printf("rounds: %d   |MIS| = %d   crashed: %d   dropped: %d   violations: %d   uncovered: %d   wall: %s\n",
				res.Rounds, res.MISSize, rep.NumCrashed, rep.Dropped,
				res.Violations, res.Uncovered, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("rounds: %d   |MIS| = %d   |MIS|/n = %.4f   feasible: yes   wall: %s\n",
				res.Rounds, res.MISSize, float64(res.MISSize)/float64(nTotal), time.Since(start).Round(time.Millisecond))
		}
	case "matching":
		rng := rand.New(rand.NewSource(seed))
		var res *algorithms.ShardedMatchingResult
		if sched != nil {
			res, err = algorithms.RandomizedMatchingShardedFaulty(se, rng, sched)
		} else {
			res, err = algorithms.RandomizedMatchingSharded(se, rng)
		}
		if err != nil {
			return err
		}
		if sched != nil {
			rep := res.Report
			fmt.Printf("rounds: 2   |M| = %d   crashed: %d   dropped: %d   conflicts: %d   wall: %s\n",
				res.Matched, rep.NumCrashed, rep.Dropped, res.Conflicts, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("rounds: 2   |M| = %d   |M|/n = %.4f   conflicts: %d   wall: %s\n",
				res.Matched, float64(res.Matched)/float64(nTotal), res.Conflicts, time.Since(start).Round(time.Millisecond))
		}
	}
	var xout, xvol int64
	for _, st := range se.Stats() {
		xout += st.ExchangeOut
		xvol += st.Exchanged
	}
	fmt.Printf("shards: %d   cross-shard arcs: %d   exchanged words: %d\n", shards, xout, xvol)
	return nil
}

// algNames lists the classic-mode algorithms, for unknown -alg errors.
var algNames = []string{
	"eds-one-out", "eds-all", "ec-one-edge", "ds-all", "vc-all",
	"vc-packing", "id-greedy-eds", "id-nonmin-vc", "oi-smallest-eds",
	"oi-nonmin-vc", "cole-vishkin",
}

func run(algName, graphName, hostDesc string, n, d int, seed int64, rmax int) error {
	rng := rand.New(rand.NewSource(seed))
	var (
		h   *model.Host
		err error
	)
	if hostDesc != "" {
		h, graphName, err = resolveHost(hostDesc)
	} else {
		h, err = buildHost(graphName, n, d, rng)
	}
	if err != nil {
		return err
	}
	ids := rng.Perm(8 * h.G.N())[:h.G.N()]
	rank := order.Identity(h.G.N())

	var (
		sol  *model.Solution
		prob problems.Problem
	)
	switch algName {
	case "eds-one-out":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunPO(h, algorithms.EDSOneOut(), model.EdgeKind)
	case "eds-all":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunPO(h, algorithms.EDSAll(), model.EdgeKind)
	case "ec-one-edge":
		prob = problems.MinEdgeCover{}
		sol, err = model.RunPO(h, algorithms.ECOneEdge(), model.EdgeKind)
	case "ds-all":
		prob = problems.MinDominatingSet{}
		sol, err = model.RunPO(h, algorithms.DSAll(), model.VertexKind)
	case "vc-all":
		prob = problems.MinVertexCover{}
		sol, err = model.RunPO(h, algorithms.VCAll(), model.VertexKind)
	case "vc-packing":
		prob = problems.MinVertexCover{}
		var res *algorithms.VCEdgePackingResult
		res, err = algorithms.VCEdgePacking(h)
		if err == nil {
			sol = res.Cover
			fmt.Printf("bargaining rounds: %d\n", res.Rounds)
		}
	case "id-greedy-eds":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunID(h, ids, algorithms.IDGreedyEDS(), model.EdgeKind)
	case "id-nonmin-vc":
		prob = problems.MinVertexCover{}
		sol, err = model.RunID(h, ids, algorithms.IDNonMinimumVC(), model.VertexKind)
	case "oi-smallest-eds":
		prob = problems.MinEdgeDominatingSet{}
		sol, err = model.RunOI(h, rank, algorithms.OISmallestNeighborEDS(), model.EdgeKind)
	case "oi-nonmin-vc":
		prob = problems.MinVertexCover{}
		sol, err = model.RunOI(h, rank, algorithms.OILocalMinJoinsVC(), model.VertexKind)
	case "cole-vishkin":
		prob = problems.MaxIndependentSet{}
		var res *algorithms.ColeVishkinResult
		res, err = algorithms.ColeVishkinMIS(h, ids)
		if err == nil {
			sol = res.MIS
			fmt.Printf("rounds: %d (O(log* n) colour reduction + O(1) cleanup)\n", res.Rounds)
		}
	default:
		return usagef("unknown algorithm %q\nalgorithms: %s", algName, strings.Join(algNames, ", "))
	}
	if err != nil {
		return err
	}
	if err := prob.Feasible(h.G, sol); err != nil {
		return fmt.Errorf("solution infeasible: %w", err)
	}
	opt, err := prob.Optimum(h.G)
	if err != nil {
		return err
	}
	ratio, err := problems.Ratio(prob, h.G, sol)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s (n=%d, m=%d, Δ=%d)\n", graphName, h.G.N(), h.G.M(), h.G.MaxDegree())
	fmt.Printf("problem: %s   |solution| = %d   optimum = %d   ratio = %.4f\n",
		prob.Name(), sol.Size(), opt, ratio)
	fmt.Printf("locally verified (PO-checkable): %v\n", problems.VerifyLocally(prob, h.G, sol))
	if rmax >= 1 {
		fmt.Printf("homogeneity under the vertex-index order (one layered sweep, radii 1..%d):\n", rmax)
		fmt.Printf("  %-3s %-10s %-7s %s\n", "r", "max α", "types", "majority count")
		for r, hm := range order.SweepMeasureAll(h.G, rank, rmax) {
			fmt.Printf("  %-3d %-10.4f %-7d %d/%d\n", r+1, hm.Alpha, len(hm.Counts), hm.Count, hm.N)
		}
	}
	return nil
}

func buildHost(name string, n, d int, rng *rand.Rand) (*model.Host, error) {
	switch name {
	case "cycle":
		g := graph.Cycle(n)
		orient, err := digraph.EulerianOrientation(g)
		if err != nil {
			return nil, err
		}
		return model.NewHost(digraph.FromPorts(g, orient).D)
	case "dcycle":
		b := digraph.NewBuilder(n, 1)
		for i := 0; i < n; i++ {
			b.MustAddArc(i, (i+1)%n, 0)
		}
		return model.NewHost(b.Build())
	case "petersen":
		return model.HostFromGraph(graph.Petersen()), nil
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		g := graph.Torus(side, side)
		orient, err := digraph.EulerianOrientation(g)
		if err != nil {
			return nil, err
		}
		return model.NewHost(digraph.FromPorts(g, orient).D)
	case "regular":
		return model.HostFromGraph(graph.RandomRegular(n, d, rng)), nil
	case "circulant":
		return model.HostFromGraph(graph.Circulant(n, 1, 2)), nil
	default:
		return nil, usagef("unknown graph %q\ngraph families: cycle, dcycle, petersen, torus, regular, circulant (or any -host descriptor)", name)
	}
}
