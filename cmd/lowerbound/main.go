// Command lowerbound runs the certified PO lower-bound engine: it
// enumerates every radius-r PO algorithm restricted to an instance and
// reports the best approximation ratio any of them achieves. By
// Theorems 1.3/1.4 the bound transfers verbatim to the OI and ID
// models on lift-closed families containing the instance.
//
// Usage:
//
//	lowerbound -problem min-edge-dominating-set -graph dcycle -n 9 [-r 1]
//
// Graphs: dcycle (directed n-cycle), circulant (directed Cayley
// circulant of Z_n with generators -a and -b), cycle/petersen/complete
// (port-numbered with the smaller-endpoint orientation).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/problems"
)

func main() {
	problemName := flag.String("problem", "min-edge-dominating-set", "problem name (see internal/problems)")
	graphName := flag.String("graph", "dcycle", "instance family: dcycle|circulant|cycle|petersen|complete")
	n := flag.Int("n", 9, "instance size")
	a := flag.Int("a", 1, "first circulant generator")
	b := flag.Int("b", 2, "second circulant generator")
	r := flag.Int("r", 1, "algorithm radius")
	budget := flag.Int("budget", 1<<22, "maximum number of PO algorithms to enumerate")
	flag.Parse()
	if err := run(*problemName, *graphName, *n, *a, *b, *r, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(problemName, graphName string, n, a, b, r, budget int) error {
	p, err := problems.ByName(problemName)
	if err != nil {
		return err
	}
	h, err := buildHost(graphName, n, a, b)
	if err != nil {
		return err
	}
	lb, err := core.CertifyPOLowerBound(h, p, r, budget)
	if err != nil {
		return err
	}
	fmt.Printf("instance: %s n=%d  problem: %s  radius: %d\n", graphName, h.G.N(), p.Name(), r)
	fmt.Printf("view types: %d   algorithms enumerated: %d   feasible: %d\n",
		lb.Types, lb.Algorithms, lb.FeasibleCount)
	fmt.Printf("optimum: %d\n", lb.Optimum)
	if math.IsInf(lb.BestRatio, 1) {
		fmt.Println("certified: NO radius-bounded PO algorithm achieves a finite approximation ratio on this instance")
	} else {
		fmt.Printf("certified: every radius-%d PO algorithm has ratio >= %.6g on this instance\n", r, lb.BestRatio)
		fmt.Println("by Theorems 1.3/1.4 the same bound holds for OI and ID algorithms on lift-closed families containing it")
	}
	return nil
}

func buildHost(name string, n, a, b int) (*model.Host, error) {
	switch name {
	case "dcycle":
		bl := digraph.NewBuilder(n, 1)
		for i := 0; i < n; i++ {
			bl.MustAddArc(i, (i+1)%n, 0)
		}
		return model.NewHost(bl.Build())
	case "circulant":
		bl := digraph.NewBuilder(n, 2)
		for v := 0; v < n; v++ {
			bl.MustAddArc(v, (v+a)%n, 0)
			bl.MustAddArc(v, (v+b)%n, 1)
		}
		return model.NewHost(bl.Build())
	case "cycle":
		return model.HostFromGraph(graph.Cycle(n)), nil
	case "petersen":
		return model.HostFromGraph(graph.Petersen()), nil
	case "complete":
		return model.HostFromGraph(graph.Complete(n)), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}
