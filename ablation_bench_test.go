package localapprox

// Ablation benchmarks for the design choices recorded in DESIGN.md:
//
//   - lazy (implicit) vs materialised neighbourhood access for the
//     homogeneous Cayley graphs — laziness is what makes the paper's
//     astronomically large graphs usable at all; on materialisable
//     sizes it costs a constant factor per ball;
//   - girth-certification cost as the group level grows — the number
//     of reduced words is level-insensitive and only the per-
//     multiplication tuple cost grows (2^i − 1 coordinates), so
//     certification scales to levels whose groups have 2^(2^i − 1)
//     elements even though they could never be enumerated;
//   - exact full-scan homogeneity vs Monte-Carlo sampling;
//   - the certified lower-bound engine's cost as the instance grows
//     (linear in instance size for a fixed, symmetric type structure).
//
// Run: go test -bench=Ablation -benchmem

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/group"
	"repro/internal/homog"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

// lazy vs materialised ball extraction on C(H_2(8), S).

func ablationConstruction(b *testing.B) *homog.Construction {
	b.Helper()
	c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	if c.Level > 2 {
		b.Skip("construction level too large to materialise")
	}
	return c
}

func BenchmarkAblationBallLazy(b *testing.B) {
	c := ablationConstruction(b)
	cay, err := c.HCayley(8)
	if err != nil {
		b.Fatal(err)
	}
	fam := group.H(c.Level, 8)
	rng := rand.New(rand.NewSource(1))
	nodes := make([]string, 64)
	for i := range nodes {
		nodes[i] = cay.Node(fam.Rand(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = digraph.Ball[string](cay, nodes[i%len(nodes)], 2)
	}
}

func BenchmarkAblationBallMaterialised(b *testing.B) {
	c := ablationConstruction(b)
	cay, err := c.HCayley(8)
	if err != nil {
		b.Fatal(err)
	}
	fam := group.H(c.Level, 8)
	id := cay.Node(fam.Identity())
	mat, nodes, _, err := digraph.Materialize[string](cay, []string{id}, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = digraph.Ball[int](mat, i%len(nodes), 2)
	}
}

// Girth certification cost by level: the word enumeration does not
// materialise the group, so cost depends on word length only.

func benchGirthAtLevel(b *testing.B, level int) {
	b.Helper()
	f := group.W(level)
	rng := rand.New(rand.NewSource(2))
	gens := []group.Elem{f.Rand(rng), f.Rand(rng)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.GirthUpTo(gens, 5)
	}
}

func BenchmarkAblationGirthLevel3(b *testing.B) { benchGirthAtLevel(b, 3) }
func BenchmarkAblationGirthLevel5(b *testing.B) { benchGirthAtLevel(b, 5) }
func BenchmarkAblationGirthLevel7(b *testing.B) { benchGirthAtLevel(b, 7) }

// Exact scan vs sampling for homogeneity measurement at m=8.

func BenchmarkAblationHomogExact(b *testing.B) {
	c := ablationConstruction(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HomogeneityExact(8, 1<<12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHomogSampled(b *testing.B) {
	c := ablationConstruction(b)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HomogeneitySample(8, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Lower-bound engine scaling on symmetric cycles (type count stays 1,
// so cost is linear in n).

func benchCertify(b *testing.B, n int) {
	b.Helper()
	bl := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		bl.MustAddArc(i, (i+1)%n, 0)
	}
	h, err := model.NewHost(bl.Build())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertifyPOLowerBound(h, problems.MinEdgeDominatingSet{}, 1, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCertifyN9(b *testing.B)  { benchCertify(b, 9) }
func BenchmarkAblationCertifyN27(b *testing.B) { benchCertify(b, 27) }
func BenchmarkAblationCertifyN81(b *testing.B) { benchCertify(b, 81) }

// OI vs PO certified-bound engine on the same instance: OI pays for
// seam types.

func BenchmarkAblationCertifyOI(b *testing.B) {
	bl := digraph.NewBuilder(15, 1)
	for i := 0; i < 15; i++ {
		bl.MustAddArc(i, (i+1)%15, 0)
	}
	h, err := model.NewHost(bl.Build())
	if err != nil {
		b.Fatal(err)
	}
	rank := order.Identity(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertifyOILowerBound(h, rank, problems.MinEdgeDominatingSet{}, 1, 1<<22); err != nil {
			b.Fatal(err)
		}
	}
}
