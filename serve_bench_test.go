package localapprox

// BenchmarkServeCachedRequest drives the full localapproxd handler
// path — routing, query parsing, canonical-key construction, FNV
// hashing, the lock-free cache probe, and response writing — on a
// warm cache entry, with no network in the way. Its 0 allocs/op
// baseline pins the service's repeat-request promise: a cache hit is
// a pooled key buffer, one shard probe and shared header slices, so
// steady-state serving of hot descriptors never touches the garbage
// collector. Gated by tools/benchdelta.py against BENCH_ci.json.

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// nullResponseWriter is a reusable ResponseWriter: the header map is
// allocated once and reused, so the handler's own allocations are the
// only thing the benchmark counts.
type nullResponseWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) WriteHeader(code int)        { w.code = code }
func (w *nullResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func BenchmarkServeCachedRequest(b *testing.B) {
	s := NewServer(ServerConfig{})
	// Warm the cache: the first request computes and stores the body.
	warm := httptest.NewRecorder()
	s.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/v1/measure?host=cycle:64&rmax=2", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm-up request failed: %d %s", warm.Code, warm.Body.String())
	}
	req := &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: "/v1/measure", RawQuery: "host=cycle:64&rmax=2"},
	}
	w := &nullResponseWriter{h: make(http.Header, 4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
	b.StopTimer()
	if w.code != http.StatusOK || w.h["X-Cache"][0] != "hit" {
		b.Fatalf("hit path broke: code=%d X-Cache=%v", w.code, w.h["X-Cache"])
	}
}
