// Package localapprox is a Go reproduction of
//
//	Mika Göös, Juho Hirvonen, Jukka Suomela:
//	"Lower Bounds for Local Approximation", PODC 2012.
//
// The paper proves that for simple PO-checkable graph optimisation
// problems on bounded-degree lift-closed families, deterministic
// constant-time distributed algorithms gain nothing from unique
// identifiers: ID = OI = PO for local approximation.
//
// This package is a thin facade re-exporting the library's main entry
// points; the implementation lives in the internal packages:
//
//	internal/graph       graphs and generators (flat CSR storage)
//	internal/host        the host-family registry (descriptor syntax)
//	internal/digraph     L-digraphs, ports, covering maps, lazy graphs
//	internal/view        view trees T(G,v) and T*
//	internal/order       ordered balls, homogeneity (Def. 3.1)
//	internal/group       the groups U_i, H_i, W_i of Section 5
//	internal/homog       the Theorem 3.2 construction
//	internal/lift        lifts and the Theorem 3.3 product
//	internal/model       the ID/OI/PO models and simulators
//	internal/core        the main-theorem transforms and the certified
//	                     PO lower-bound engine
//	internal/ramsey      monochromatic-subset search (Section 4.2)
//	internal/problems    the six problems of Example 1.1
//	internal/solve       exact optimisation solvers
//	internal/algorithms  local algorithms (upper bounds + adversaries)
//	internal/experiments the E1–E17 experiment suite
//
// Quick start (see also examples/):
//
//	g := localapprox.Cycle(9)
//	h := localapprox.HostFromGraph(g)
//	sol, _ := localapprox.RunPO(h, localapprox.EDSOneOut(), localapprox.EdgeKind)
//	ratio, _ := localapprox.Ratio(localapprox.MinEDS, g, sol)
package localapprox

import (
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/homog"
	"repro/internal/host"
	"repro/internal/job"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/problems"
	"repro/internal/serve"
)

// Re-exported core types.
type (
	// Graph is an undirected bounded-degree graph.
	Graph = graph.Graph
	// Digraph is an L-edge-labelled digraph (port numbering +
	// orientation).
	Digraph = digraph.Digraph
	// Host is a graph instance runnable in all three models.
	Host = model.Host
	// Solution is a vertex or edge subset produced by an algorithm.
	Solution = model.Solution
	// Problem is a simple PO-checkable optimisation problem.
	Problem = problems.Problem
	// Construction is a Theorem 3.2 homogeneous-graph construction.
	Construction = homog.Construction
	// LowerBound is a machine-certified PO-model lower bound.
	LowerBound = core.LowerBound
	// TransferReport is an end-to-end Theorem 4.1 run.
	TransferReport = core.TransferReport
	// Table is an experiment result.
	Table = experiments.Table
	// Rank is a linear order on vertices (the OI model's structure).
	Rank = order.Rank
	// Homogeneity is a Definition 3.1 measurement result.
	Homogeneity = order.Homogeneity
	// Sweeper is the worker-local scratch of the ball-sweep engine.
	Sweeper = order.Sweeper
	// SearchOptions bounds the homogeneous-construction search.
	SearchOptions = homog.SearchOptions
	// Engine is the batched worker-parallel round simulator: a CSR
	// message plane sized once from the host's arcs, double-buffered
	// arenas, an active-set worklist and persistent per-run workers.
	Engine = model.Engine
	// EngineAlgo is the engine-native round-algorithm form (Step
	// writes its outbox straight into the message plane).
	EngineAlgo = model.EngineAlgo
	// RoundAlgo is the classical slice-returning round algorithm.
	RoundAlgo = model.RoundAlgo
	// Outbox routes a node's outgoing messages into the plane.
	Outbox = model.Outbox
	// Msg is one message on an incident arc.
	Msg = model.Msg
	// NodeInfo is a node's initial knowledge.
	NodeInfo = model.NodeInfo
	// Schedule decides, per round, each message slot's fate and each
	// node's up/down/crashed state (DESIGN.md §8). A nil Schedule is
	// the clean synchronous plane.
	Schedule = model.Schedule
	// FaultProfile is a named, parameterised fault schedule ("clean",
	// "lossy:p=0.05", "crash:f=100,by=8", ...).
	FaultProfile = model.Profile
	// FaultReport tallies the faults a run actually injected.
	FaultReport = model.FaultReport
	// TypedAlgo is the typed engine-native round-algorithm form:
	// states in a columnar []S, payloads on the uint64 word lane,
	// sends addressed by local slot (DESIGN.md §9).
	TypedAlgo[S any] = model.TypedAlgo[S]
	// TypedEngine couples an Engine's message plane with a columnar
	// state array; typed and untyped runs may alternate on one plane.
	TypedEngine[S any] = model.TypedEngine[S]
	// WordAlgo is the fully packed uint64-state typed algorithm form.
	WordAlgo = model.WordAlgo
	// WordEngine is the uint64-state typed engine.
	WordEngine = model.WordEngine
	// WordMsg is one typed inbox entry: payload word + local slot.
	WordMsg = model.WordMsg
)

// Solution kinds.
const (
	VertexKind = model.VertexKind
	EdgeKind   = model.EdgeKind
)

// The six problems of Example 1.1.
var (
	MinVC  = problems.MinVertexCover{}
	MinEC  = problems.MinEdgeCover{}
	MaxMM  = problems.MaxMatching{}
	MaxIS  = problems.MaxIndependentSet{}
	MinDS  = problems.MinDominatingSet{}
	MinEDS = problems.MinEdgeDominatingSet{}
)

// Graph generators.
var (
	Cycle            = graph.Cycle
	Torus            = graph.Torus
	Petersen         = graph.Petersen
	Complete         = graph.Complete
	Circulant        = graph.Circulant
	RandomRegular    = graph.RandomRegular
	Grid3D           = graph.Grid3D
	MargulisExpander = graph.MargulisExpander
)

// The host registry: every named, parameterised host family behind
// one descriptor namespace ("torus:12x12",
// "random-regular:d=4,n=512,seed=7", "lift:cycle:9,l=3", ...). See
// DESIGN.md §4 for the grammar; ParseHost errors list the registry.
var (
	ParseHost      = host.Parse
	MustParseHost  = host.MustParse
	HostFamilies   = host.Families
	RegisterFamily = host.Register
)

// Hosts and runners. RunRounds executes through the batched round
// engine (NewEngine exposes it directly for arena reuse across runs);
// RunRoundsReference is the retained sequential specification loop,
// and SimulatePORounds drives a PO algorithm operationally through
// the engine's message plane.
var (
	HostFromGraph    = model.HostFromGraph
	NewHost          = model.NewHost
	RunPO            = model.RunPO
	RunOI            = model.RunOI
	RunID            = model.RunID
	RunRounds        = model.RunRounds
	NewEngine        = model.NewEngine
	RunRoundsRef     = model.RunRoundsReference
	SimulatePO       = model.SimulatePO
	SimulatePORounds = model.SimulatePORounds
)

// The typed columnar path (DESIGN.md §9): states live in contiguous
// []S columns and payloads in the plane's fixed-width uint64 word
// lane — no interface boxing on the hot loop. RunRoundsWord and
// NewWordEngine are the packed uint64 instantiations Cole–Vishkin and
// the randomized matching run on; the generic forms
// (model.RunRoundsTyped[S], model.NewTypedEngine[S], model.TypedOn[S])
// are reachable through the aliases above for any state type.
// SimulatePORoundsTyped gathers views over the word lane (column
// handles to hash-consed trees) — byte-identical to SimulatePORounds.
var (
	NewWordEngine               = model.NewWordEngine
	RunRoundsWord               = model.RunRoundsTyped[uint64]
	RunRoundsWordFaulty         = model.RunRoundsTypedFaulty[uint64]
	SimulatePORoundsTyped       = model.SimulatePORoundsTyped
	SimulatePORoundsTypedFaulty = model.SimulatePORoundsTypedFaulty
)

// The sharded giant-host plane (DESIGN.md §12): NewShardedEngine
// partitions a host into P contiguous shards — each with its own CSR
// slice, word-lane arenas and workers — and drains cross-shard arcs
// through a compact exchange buffer at the round barrier. A ShardSource
// describes the topology one node at a time, so implicit shard-capable
// families (ParseShardHost: cycle, dcycle, torus, shift-regular) run
// hosts past the flat int32 capacity in bounded resident memory; any
// materialised host runs sharded through SourceOf. P=1 sharded output
// is byte-identical to the flat Engine, clean and faulty alike (fault
// coordinates stay global).
type (
	// ShardedEngine is the P-shard round engine.
	ShardedEngine = model.ShardedEngine
	// ShardedWordAlgo is the sharded uint64 word-lane algorithm form
	// (Init is sequential in global node order; Step sends through the
	// shared WordSender interface, so one core drives both planes).
	ShardedWordAlgo = model.ShardedWordAlgo
	// ShardSource generates a host's topology shard-locally.
	ShardSource = model.ShardSource
	// ShardArc is one labelled arc emitted by a ShardSource.
	ShardArc = model.ShardArc
	// ShardStats is one shard's occupancy and exchange snapshot.
	ShardStats = model.ShardStats
	// IDFunc assigns identifiers without materialising an id table.
	IDFunc = model.IDFunc
	// WordSender is the send surface shared by the flat Outbox and the
	// sharded outbox.
	WordSender = model.WordSender
	// ShardedCVResult is a sharded Cole–Vishkin run's summary.
	ShardedCVResult = algorithms.ShardedCVResult
	// ShardedMatchingResult is a sharded matching run's summary.
	ShardedMatchingResult = algorithms.ShardedMatchingResult
)

var (
	NewShardedEngine                = model.NewShardedEngine
	ShardSourceOf                   = model.SourceOf
	MaterializeShardSource          = model.MaterializeSource
	SeededIDs                       = model.SeededIDs
	ParseShardHost                  = host.ParseShard
	ShardHostFamilies               = host.ShardFamilies
	RegisterShardFamily             = host.RegisterShard
	ColeVishkinSharded              = algorithms.ColeVishkinMISSharded
	ColeVishkinShardedFaulty        = algorithms.ColeVishkinMISShardedFaulty
	RandomizedMatchingSharded       = algorithms.RandomizedMatchingSharded
	RandomizedMatchingShardedFaulty = algorithms.RandomizedMatchingShardedFaulty
	VisitShardedMatching            = algorithms.VisitShardedMatching
)

// Fault injection (DESIGN.md §8): every engine entry point has a
// *Faulty twin taking a Schedule built from a parseable profile
// descriptor. A faulty execution is a pure function of (host, ids,
// algorithm, profile descriptor, seed) — reproducible bit-for-bit,
// independent of worker count. ParseFaultProfile errors list the
// grammar; a nil Schedule (or the "clean" profile) is byte-identical
// to the clean engine.
var (
	ParseFaultProfile        = model.ParseProfile
	MustParseFaultProfile    = model.MustParseProfile
	FaultProfiles            = model.DescribeProfiles
	RunRoundsFaulty          = model.RunRoundsFaulty
	SimulatePORoundsFaulty   = model.SimulatePORoundsFaulty
	ColeVishkinFaulty        = algorithms.ColeVishkinMISFaulty
	RandomizedMatchingFaulty = algorithms.RandomizedMatchingFaulty
)

// Homogeneity measurement (Definition 3.1). MeasureHomogeneity scans
// through the batched ball-sweep engine (worker-local sweepers,
// copy-on-miss interning; see DESIGN.md §5); SweepMeasure is the same
// entry under its engine name. SweepMeasureAll is the layered
// multi-radius form (DESIGN.md §6): homogeneity at every radius
// 1..rmax (result[r-1]) from ONE whole-host pass — one BFS per
// vertex, canonicalised at each layer boundary, tallied by
// worker-local count maps — with each entry identical to a separate
// SweepMeasure call at that radius. NewSweeper exposes the per-worker
// scratch (CanonicalBall and the layered CanonicalBalls) for custom
// scan loops.
var (
	MeasureHomogeneity = order.Measure
	SweepMeasure       = order.SweepMeasure
	SweepMeasureAll    = order.SweepMeasureAll
	NewSweeper         = order.NewSweeper
	NewBallInterner    = order.NewInterner
)

// View gathering: each node's radius-r view tree by the
// level-synchronous assembly; GatheredTreesAll keeps every
// intermediate level — all radii 0..rmax from the single pass the
// deepest radius alone costs.
var (
	GatheredTrees    = model.GatheredTrees
	GatheredTreesAll = model.GatheredTreesAll
)

// Algorithms. RandomizedMatching runs the §6.5 one-round mutual
// proposals operationally on the engine.
var (
	EDSOneOut          = algorithms.EDSOneOut
	ECOneEdge          = algorithms.ECOneEdge
	DSAll              = algorithms.DSAll
	VCAll              = algorithms.VCAll
	VCEdgePacking      = algorithms.VCEdgePacking
	ColeVishkin        = algorithms.ColeVishkinMIS
	IDGreedyEDS        = algorithms.IDGreedyEDS
	RandomizedMatching = algorithms.RandomizedMatching
)

// Main-theorem machinery.
var (
	SearchHomogeneous    = homog.Search
	OIToPO               = core.OIToPO
	TransferOIToPO       = core.TransferOIToPO
	BuildHomogeneousLift = core.BuildHomogeneousLift
	CertifyPOLowerBound  = core.CertifyPOLowerBound
	IDToOI               = core.IDToOI
	Ratio                = problems.Ratio
	VerifyLocally        = problems.VerifyLocally
	AllExperiments       = experiments.All
	RunAllExperiments    = experiments.RunAll
)

// Deadline-aware entry points: the *Ctx twins of the engine runners,
// the scale-mode algorithms and the layered sweep thread a
// context.Context into the round loop and the sweep loop, where it is
// polled cooperatively — a cancelled run stops at the next round
// barrier (sweep: the next vertex batch), releases its workers and
// returns the wrapped context error. The non-Ctx names above are the
// same code with no context armed.
var (
	RunRoundsCtx                = model.RunRoundsStatesCtx
	RunRoundsFaultyCtx          = model.RunRoundsStatesFaultyCtx
	SweepMeasureAllCtx          = order.SweepMeasureAllCtx
	ColeVishkinCtx              = algorithms.ColeVishkinMISCtx
	ColeVishkinFaultyCtx        = algorithms.ColeVishkinMISFaultyCtx
	RandomizedMatchingCtx       = algorithms.RandomizedMatchingCtx
	RandomizedMatchingFaultyCtx = algorithms.RandomizedMatchingFaultyCtx
)

// The service layer (DESIGN.md §10): NewServer builds the handler
// cmd/localapproxd serves — admission control over the worker budget,
// per-request deadlines, panic isolation, a content-addressed result
// cache with singleflight collapse, and health/readiness/metrics
// endpoints with graceful drain.
type (
	// Server is the localapproxd http.Handler.
	Server = serve.Server
	// ServerConfig sizes a Server (zero values take the defaults).
	ServerConfig = serve.Config
)

// NewServer builds the hardened simulation-service handler.
var NewServer = serve.New

// Durable jobs and checkpoints (DESIGN.md §11): long-running workloads
// submitted over /v1/jobs checkpoint their engine (or certify
// enumeration) state into content-addressed, hash-verified snapshot
// files, survive crashes by resuming from the latest valid snapshot on
// OpenJobs, retry transient failures with backoff, and produce result
// bytes identical to an uninterrupted run. Engine snapshot/resume is
// also usable directly: Snapshot at a round barrier, Resume on a fresh
// engine of the same host — byte-deterministic, clean and faulty,
// untyped and typed word-lane alike.
type (
	// JobManager owns the worker pool, the job directory and the
	// lifecycle (attach to a Server with AttachJobs).
	JobManager = job.Manager
	// JobConfig sizes a JobManager (zero values take the defaults).
	JobConfig = job.Config
	// JobSpec is a job submission; its canonical encoding is the
	// job's content-addressed identity.
	JobSpec = job.Spec
	// JobStatus is the externally visible job record.
	JobStatus = job.Status
	// Snapshot is a round-barrier capture of an Engine's state.
	Snapshot = model.Snapshot
	// Checkpointer arms an engine with a periodic (or on-demand)
	// snapshot sink.
	Checkpointer = model.Checkpointer
	// CertifySnapshot is a cursor+catalogue capture of a certify
	// enumeration.
	CertifySnapshot = core.CertifySnapshot
	// CertifyOpts arms CertifyPOLowerBoundOpts with context,
	// progress, checkpointing and resume.
	CertifyOpts = core.CertifyOpts
)

var (
	OpenJobs                = job.Open
	DecodeSnapshot          = model.DecodeSnapshot
	DecodeCertifySnapshot   = core.DecodeCertifySnapshot
	CertifyPOLowerBoundOpts = core.CertifyPOLowerBoundOpts
)

// Panic isolation and budget introspection from the par runtime:
// Catch runs a function and converts a panic (its own or a worker's)
// into a *PanicError carrying the value and stack; WorkersInUse
// gauges currently reserved extra-worker slots (0 when idle — the
// serve tests assert the budget drains after cancellations).
type (
	// PanicError is a recovered panic as an error.
	PanicError = par.PanicError
)

var (
	CatchPanic   = par.Catch
	WorkersInUse = par.InUse
)

// Parallelism controls the worker-pool width of the scan-heavy paths
// (homogeneity measurement, view gathering, lift classification, the
// experiment suite). SetParallelism(1) forces the sequential fallback;
// SetParallelism(0) resets to the number of CPUs. Parallel and
// sequential runs produce identical results.
var (
	SetParallelism = par.Set
	Parallelism    = par.N
)
