// Quickstart: run an anonymous (PO-model) local algorithm on a graph,
// verify its output with a PO-checkable verifier, and compare against
// the exact optimum.
//
// The algorithm is the maximal-edge-packing vertex cover of Åstrand et
// al. — a genuine anonymous algorithm: no identifiers are used, only
// the port numbering, and it is 2-approximate on every graph.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/problems"
)

func main() {
	// 1. A bounded-degree input graph: the Petersen graph (3-regular).
	g := graph.Petersen()
	fmt.Printf("input: Petersen graph, n=%d, m=%d, Δ=%d, girth=%d\n",
		g.N(), g.M(), g.MaxDegree(), g.Girth())

	// 2. Equip it with a port numbering and orientation: the full
	//    structure a PO-model node may use. No identifiers anywhere.
	h := model.HostFromGraph(g)
	fmt.Printf("host: %v (anonymous, port-numbered, oriented)\n", h.D)

	// 3. Run the anonymous vertex-cover algorithm.
	res, err := algorithms.VCEdgePacking(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge-packing bargaining finished in %d round(s)\n", res.Rounds)
	fmt.Printf("cover: %v\n", res.Cover.VertexSet())

	// 4. Verify feasibility the paper's way: every node checks its own
	//    radius-1 neighbourhood (the problem is PO-checkable), and the
	//    solution is feasible iff all nodes accept.
	p := problems.MinVertexCover{}
	fmt.Printf("locally verified: %v\n", problems.VerifyLocally(p, g, res.Cover))

	// 5. Compare with the exact optimum.
	opt, err := p.Optimum(g)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := problems.Ratio(p, g, res.Cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|cover| = %d, optimum = %d, ratio = %.3f (bound: 2)\n",
		res.Cover.Size(), opt, ratio)
}
