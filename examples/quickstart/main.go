// Quickstart: run an anonymous (PO-model) local algorithm on a graph,
// verify its output with a PO-checkable verifier, and compare against
// the exact optimum.
//
// The algorithm is the maximal-edge-packing vertex cover of Åstrand et
// al. — a genuine anonymous algorithm: no identifiers are used, only
// the port numbering, and it is 2-approximate on every graph.
//
// Run: go run ./examples/quickstart [host-descriptor]
//
// The host is resolved through the registry (internal/host), so any
// registered family works: "torus:6x6", "margulis-expander:n=6",
// "random-regular:d=3,n=20,seed=1", ... The default is the Petersen
// graph.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/algorithms"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/problems"
)

func main() {
	// 1. A bounded-degree input graph, by registry descriptor.
	desc := "petersen"
	if len(os.Args) > 1 {
		desc = os.Args[1]
	}
	hh, err := host.Parse(desc)
	if err != nil {
		log.Fatal(err)
	}
	g := hh.G
	fmt.Printf("input: %s, n=%d, m=%d, Δ=%d, girth=%d\n",
		desc, g.N(), g.M(), g.MaxDegree(), g.Girth())

	// 2. Equip it with a port numbering and orientation: the full
	//    structure a PO-model node may use. No identifiers anywhere.
	h := model.HostFromGraph(g)
	fmt.Printf("host: %v (anonymous, port-numbered, oriented)\n", h.D)

	// 3. Run the anonymous vertex-cover algorithm.
	res, err := algorithms.VCEdgePacking(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge-packing bargaining finished in %d round(s)\n", res.Rounds)
	fmt.Printf("cover: %v\n", res.Cover.VertexSet())

	// 4. Verify feasibility the paper's way: every node checks its own
	//    radius-1 neighbourhood (the problem is PO-checkable), and the
	//    solution is feasible iff all nodes accept.
	p := problems.MinVertexCover{}
	fmt.Printf("locally verified: %v\n", problems.VerifyLocally(p, g, res.Cover))

	// 5. Compare with the exact optimum.
	opt, err := p.Optimum(g)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := problems.Ratio(p, g, res.Cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|cover| = %d, optimum = %d, ratio = %.3f (bound: 2)\n",
		res.Cover.Size(), opt, ratio)
}
