// Edge dominating set: the Theorem 1.6 story end to end.
//
// The paper settles the local approximability of minimum edge
// dominating set at α0 = 4 − 2/Δ' by lifting a PO-model lower bound to
// the ID model. This example replays the whole argument for Δ = 2
// (α0 = 3) with machine-checked steps:
//
//  1. certify (by exhausting all radius-1 PO algorithms) that no PO
//     algorithm beats ratio 3 on the symmetric directed cycle;
//  2. show the one-out-edge PO algorithm achieves 3 — the bound is
//     tight;
//  3. show an ID algorithm that uses identifiers beats 3 on friendly
//     identifier assignments…
//  4. …but on adversarial, order-respecting identifiers (what the
//     homogeneous-lift machinery of Theorems 3.3/4.1 constructs) it is
//     forced back to the PO value as n grows.
//
// Run: go run ./examples/edgedominating
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/model"
	"repro/internal/problems"
)

func main() {
	p := problems.MinEdgeDominatingSet{}
	rng := rand.New(rand.NewSource(2012))

	fmt.Println("== Theorem 1.6 for Δ = 2: α0 = 4 − 2/Δ' = 3 ==")
	for _, n := range []int{9, 15, 30, 60} {
		h := directedCycle(n)

		// (1) Certified PO lower bound.
		lb, err := core.CertifyPOLowerBound(h, p, 1, 1<<20)
		if err != nil {
			log.Fatal(err)
		}

		// (2) The PO upper bound.
		solPO, err := model.RunPO(h, algorithms.EDSOneOut(), model.EdgeKind)
		if err != nil {
			log.Fatal(err)
		}
		rPO, err := problems.Ratio(p, h.G, solPO)
		if err != nil {
			log.Fatal(err)
		}

		// (3) ID greedy with random identifiers.
		ids := rng.Perm(10 * n)[:n]
		solRnd, err := model.RunID(h, ids, algorithms.IDGreedyEDS(), model.EdgeKind)
		if err != nil {
			log.Fatal(err)
		}
		rRnd, err := problems.Ratio(p, h.G, solRnd)
		if err != nil {
			log.Fatal(err)
		}

		// (4) ID greedy with adversarial order-respecting identifiers.
		adv := make([]int, n)
		for i := range adv {
			adv[i] = i + 1
		}
		solAdv, err := model.RunID(h, adv, algorithms.IDGreedyEDS(), model.EdgeKind)
		if err != nil {
			log.Fatal(err)
		}
		rAdv, err := problems.Ratio(p, h.G, solAdv)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("C%-3d certified PO >= %.3f | PO alg %.3f | ID random %.3f | ID adversarial %.3f\n",
			n, lb.BestRatio, rPO, rRnd, rAdv)
	}
	fmt.Println()
	fmt.Println("identifiers help on random instances, but the adversarial order-")
	fmt.Println("respecting assignment pushes the ID algorithm to the PO bound: the")
	fmt.Println("ID model cannot beat α0 — exactly Theorem 1.6.")
}

func directedCycle(n int) *model.Host {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	h, err := model.NewHost(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	return h
}
