// Separation: Fig. 2 — why constant time is special.
//
// With running time Θ(log* n), the three models separate: maximal
// independent set on a cycle is solvable in the ID model (Cole–Vishkin
// colour reduction), needs Θ(n) in OI, and is impossible in PO. This
// example measures the Cole–Vishkin round counts across three orders
// of magnitude of n and certifies the OI/PO impossibility at constant
// radius by exhausting every behaviour.
//
// The paper's point is the converse: at O(1) time, the models
// coincide for approximation — see examples/edgedominating.
//
// Run: go run ./examples/separation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/digraph"
	"repro/internal/model"
	"repro/internal/problems"
)

func main() {
	fmt.Println("== MIS on directed cycles: ID vs OI vs PO (Fig. 2) ==")
	fmt.Println()
	rng := rand.New(rand.NewSource(5))
	fmt.Printf("%8s  %18s  %12s\n", "n", "CV rounds (ID)", "MIS valid?")
	for _, n := range []int{8, 32, 128, 512, 2048} {
		h := directedCycle(n)
		ids := rng.Perm(8 * n)[:n]
		res, err := algorithms.ColeVishkinMIS(h, ids)
		if err != nil {
			log.Fatal(err)
		}
		valid := problems.MaxIndependentSet{}.Feasible(h.G, res.MIS) == nil &&
			problems.MinDominatingSet{}.Feasible(h.G, res.MIS) == nil
		fmt.Printf("%8d  %18d  %12v\n", n, res.Rounds, valid)
	}
	fmt.Println()
	fmt.Println("round counts are flat while n grows 256x: Θ(log* n).")
	fmt.Println()

	// PO: on the symmetric directed cycle every node has the same view,
	// so a PO algorithm outputs a constant — neither constant is a MIS.
	n := 12
	h := directedCycle(n)
	for _, member := range []bool{false, true} {
		sol := model.NewSolution(model.VertexKind, n)
		for v := range sol.Vertices {
			sol.Vertices[v] = member
		}
		indep := problems.MaxIndependentSet{}.Feasible(h.G, sol) == nil
		maximal := problems.MinDominatingSet{}.Feasible(h.G, sol) == nil
		fmt.Printf("PO behaviour all-%v: independent=%v maximal=%v\n", member, indep, maximal)
	}
	fmt.Println("=> no PO algorithm outputs an MIS on the symmetric cycle, at any constant radius.")
	fmt.Println()
	fmt.Println("in the OI model the order's single 'seam' does not help either; the")
	fmt.Println("experiment suite (E2) certifies this by exhausting all radius-r behaviours.")
}

func directedCycle(n int) *model.Host {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	h, err := model.NewHost(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	return h
}
