// Certify: machine-checked lower bounds in both weak models, through
// the public API.
//
// The paper's program is: prove a lower bound in an easy-to-analyse
// weak model, then amplify it to the full LOCAL (ID) model with
// Theorems 1.3/1.4. This example runs the two certified engines — PO
// (exhausting all view-type behaviours) and OI (exhausting all
// ordered-ball-type behaviours) — side by side on directed cycles for
// every one of the six problems of Example 1.1.
//
// Run: go run ./examples/certify
package main

import (
	"fmt"
	"log"
	"math"

	localapprox "repro"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

func main() {
	n := 12
	h := directedCycle(n)
	rank := order.Identity(n)

	fmt.Printf("certified lower bounds on the directed %d-cycle (radius 1)\n\n", n)
	fmt.Printf("%-26s %-14s %-14s %s\n", "problem", "PO bound", "OI bound", "paper's tight factor")
	for _, p := range problems.All() {
		po, err := core.CertifyPOLowerBound(h, p, 1, 1<<22)
		if err != nil {
			log.Fatal(err)
		}
		oi, err := core.CertifyOILowerBound(h, rank, p, 1, 1<<22)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-14s %-14s %s\n", p.Name(),
			fmtRatio(po.BestRatio), fmtRatio(oi.BestRatio), paperBound(p.Name()))
	}
	fmt.Println()
	fmt.Println("the OI bounds trail the PO bounds only by the O(r/n) seam effect; by")
	fmt.Println("Theorems 1.3/1.4, on lift-closed families all three models meet the")
	fmt.Println("same asymptotic constants (left column of EXPERIMENTS.md).")

	// And the facade one-liner from the README:
	g := localapprox.Cycle(9)
	host := localapprox.HostFromGraph(g)
	sol, err := localapprox.RunPO(host, localapprox.EDSOneOut(), localapprox.EdgeKind)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := localapprox.Ratio(localapprox.MinEDS, g, sol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfacade check: EDS one-out-edge on C9 has ratio %.3f (bound 3)\n", ratio)
}

func fmtRatio(x float64) string {
	if math.IsInf(x, 1) {
		return "∞"
	}
	return fmt.Sprintf("%.4g", x)
}

func paperBound(name string) string {
	switch name {
	case "min-vertex-cover", "min-edge-cover":
		return "2"
	case "min-dominating-set":
		return "Δ'+1 = 3"
	case "min-edge-dominating-set":
		return "4−2/Δ' = 3"
	default:
		return "unbounded"
	}
}

func directedCycle(n int) *model.Host {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	h, err := model.NewHost(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	return h
}
