// Homogeneous graphs: the Theorem 3.2 construction, step by step.
//
// The paper's key technical tool is a finite 2k-regular graph of girth
// > 2r+1 whose nodes are linearly ordered so that a 1−ε fraction share
// one ordered neighbourhood type τ*. This example walks the Section 5
// pipeline: girth search in the 2-group W_i, the left-invariant order
// on the soluble group U_i, τ* extraction, and the finite cut-down
// H_i(m) — then measures everything.
//
// Run: go run ./examples/homogeneous
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/group"
	"repro/internal/homog"
)

func main() {
	k, r := 1, 1
	fmt.Printf("== Theorem 3.2 for k=%d, r=%d ==\n\n", k, r)

	// Step 1 (Thm 5.1 stand-in): find generators S ⊆ W_i with girth
	// certified > 2r+1 by reduced-word enumeration.
	c, err := homog.Search(k, r, homog.SearchOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	floor, err := c.CertifiedGirthFloor()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: level i=%d after %d attempt(s); girth certified >= %d\n",
		c.Level, c.Attempts, floor)
	for i, g := range c.Gens {
		fmt.Printf("        s%d = (%s) in W_%d, reinterpreted in H and U\n",
			i, group.EncodeElem(g), c.Level)
	}

	// Step 2: τ* — the ordered complete tree, extracted from the
	// left-invariant positive-cone order on the infinite group U.
	tau, err := c.TauStar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: τ* is the ordered complete tree T*(%d,%d) with %d vertices\n",
		k, r, tau.Tree.Size())

	// Step 3: U itself is (1, r)-homogeneous — every element has type τ*.
	tauEnc, err := c.TauStarBallEncoding()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	u := group.U(c.Level)
	all := true
	for i := 0; i < 10; i++ {
		typ, err := c.TypeAt(0, u.RandSmall(rng, 25))
		if err != nil {
			log.Fatal(err)
		}
		if typ != tauEnc {
			all = false
		}
	}
	fmt.Printf("step 3: 10/10 random elements of U have ordered type τ*: %v\n", all)

	// Step 4: cut down to the finite H(m) and measure (1−ε, r).
	for _, eps := range []float64{0.5, 0.3, 0.1} {
		m := c.MForEpsilon(eps)
		fam, err := group.NewFamily(c.Level, m)
		if err != nil {
			log.Fatal(err)
		}
		if ord := fam.Order(); ord.IsInt64() && ord.Int64() <= 1<<16 {
			rep, err := c.HomogeneityExact(m, 1<<16)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("step 4: eps=%.1f -> m=%-3d |H|=%-6d girth=%d  alpha=%.4f (bound %.4f) [exact]\n",
				eps, m, rep.N, rep.Girth, rep.Alpha, rep.InnerBound)
		} else {
			rep, err := c.HomogeneitySample(m, 120, rng)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("step 4: eps=%.1f -> m=%-3d |H|=%-6s alpha~=%.4f (bound %.4f) [sampled]\n",
				eps, m, fam.Order().String(), rep.Alpha, rep.InnerBound)
		}
	}
	fmt.Println("\nall four properties hold at once: (P1) homogeneous, (P2) 2k-regular,")
	fmt.Println("(P3) girth > 2r+1, (P4) finite — which no naive construction achieves.")
}
