package localapprox

// The benchmark harness: one benchmark per experiment (each experiment
// regenerates one figure or theorem-as-table of the paper; see
// DESIGN.md's index and EXPERIMENTS.md for measured-vs-paper), plus
// micro-benchmarks of the substrates (group arithmetic, views, balls,
// exact solvers, the certified lower-bound engine).
//
// Run: go test -bench=. -benchmem

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/group"
	"repro/internal/homog"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/problems"
	"repro/internal/solve"
	"repro/internal/view"
)

func benchExperiment(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per experiment ---

func BenchmarkE1Models(b *testing.B)     { benchExperiment(b, experiments.Models) }
func BenchmarkE2Separation(b *testing.B) { benchExperiment(b, experiments.Separation) }
func BenchmarkE3Approximability(b *testing.B) {
	benchExperiment(b, experiments.Approximability)
}
func BenchmarkE4Homogeneous(b *testing.B) { benchExperiment(b, experiments.HomogeneousGraphs) }
func BenchmarkE5Torus(b *testing.B)       { benchExperiment(b, experiments.TorusHomogeneity) }
func BenchmarkE6UHomogeneity(b *testing.B) {
	benchExperiment(b, experiments.UHomogeneity)
}
func BenchmarkE7Lift(b *testing.B)    { benchExperiment(b, experiments.Lifts) }
func BenchmarkE8OIToPO(b *testing.B)  { benchExperiment(b, experiments.Transfer) }
func BenchmarkE9Ramsey(b *testing.B)  { benchExperiment(b, experiments.RamseyIDOI) }
func BenchmarkE10EDS(b *testing.B)    { benchExperiment(b, experiments.EDSLowerBound) }
func BenchmarkE11Girth(b *testing.B)  { benchExperiment(b, experiments.GirthSearch) }
func BenchmarkE12Growth(b *testing.B) { benchExperiment(b, experiments.Growth) }
func BenchmarkE13PN(b *testing.B)     { benchExperiment(b, experiments.PNSeparation) }
func BenchmarkE14Views(b *testing.B)  { benchExperiment(b, experiments.Views) }
func BenchmarkE15Random(b *testing.B) { benchExperiment(b, experiments.Randomized) }

// --- substrate micro-benchmarks ---

func BenchmarkGroupMulW4(b *testing.B) {
	f := group.W(4)
	rng := rand.New(rand.NewSource(1))
	x, y := f.Rand(rng), f.Rand(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
}

func BenchmarkGroupMulU4(b *testing.B) {
	f := group.U(4)
	rng := rand.New(rand.NewSource(1))
	x, y := f.RandSmall(rng, 3), f.RandSmall(rng, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(x, y)
	}
}

func BenchmarkGroupOrderCompare(b *testing.B) {
	f := group.U(3)
	rng := rand.New(rand.NewSource(2))
	x, y := f.RandSmall(rng, 10), f.RandSmall(rng, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Less(x, y)
	}
}

func BenchmarkGirthCertificateK2(b *testing.B) {
	f := group.W(4)
	rng := rand.New(rand.NewSource(3))
	gens := []group.Elem{f.Rand(rng), f.Rand(rng)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.GirthUpTo(gens, 5)
	}
}

func BenchmarkViewBuildPetersenR3(b *testing.B) {
	d := digraph.FromPorts(graph.Petersen(), nil).D
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = view.Build[int](d, i%10, 3)
	}
}

func BenchmarkViewEncode(b *testing.B) {
	t := view.Complete(2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Encode()
	}
}

func BenchmarkCanonicalBall(b *testing.B) {
	// The sweep-engine extraction path: after one warm-up pass every
	// type is registered, so the measured loop is all interner hits —
	// the steady state of a whole-host sweep — and must report
	// 0 allocs/op (gated by tools/benchdelta.py against BENCH_ci.json).
	g := graph.Torus(8, 8)
	rank := order.Identity(g.N())
	in := order.NewInterner()
	s := order.NewSweeper()
	for v := 0; v < g.N(); v++ {
		_ = s.CanonicalBall(g, rank, v, 2, in)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.CanonicalBall(g, rank, i%g.N(), 2, in)
	}
}

func BenchmarkCanonicalBallReference(b *testing.B) {
	// The retained per-vertex reference path (fresh ball per call),
	// kept benchmarked so the sweep engine's win stays visible.
	g := graph.Torus(8, 8)
	rank := order.Identity(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = order.CanonicalBall(g, rank, i%g.N(), 2)
	}
}

func BenchmarkSweepMeasure(b *testing.B) {
	// Full-host batched sweep: every vertex of a 24×24 torus at
	// radius 2 through the sweep engine. Pinned to the sequential
	// fallback so ns/op and allocs/op are independent of the runner's
	// core count — this benchmark is CI-gated against BENCH_ci.json,
	// and the parallel speedup is a property of par, not the engine.
	defer par.Set(par.Set(1))
	g := graph.Torus(24, 24)
	rank := order.Identity(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = order.SweepMeasure(g, rank, 2)
	}
}

func BenchmarkSweepMeasureAll(b *testing.B) {
	// The layered multi-radius sweep: homogeneity at radii 1..3 of the
	// 24×24 torus from ONE whole-host pass (one BFS per vertex,
	// canonicalised at each layer boundary, worker-local tallies).
	// Pinned to the sequential fallback like BenchmarkSweepMeasure —
	// both are CI-gated against BENCH_ci.json.
	defer par.Set(par.Set(1))
	g := graph.Torus(24, 24)
	rank := order.Identity(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = order.SweepMeasureAll(g, rank, 3)
	}
}

func BenchmarkCanonicalBallParallel(b *testing.B) {
	// Interner-hit contention: several goroutines hammering one shared
	// interner whose types are all registered, so every probe takes
	// the lock-free read path. GOMAXPROCS is pinned so the goroutine
	// count does not follow the runner's core count; on machines with
	// fewer cores the goroutines timeshare and the ns/op gate is
	// simply conservative. Steady state must stay 0 allocs/op.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	g := graph.Torus(8, 8)
	rank := order.Identity(g.N())
	in := order.NewInterner()
	warm := order.NewSweeper()
	for v := 0; v < g.N(); v++ {
		_ = warm.CanonicalBall(g, rank, v, 2, in)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := order.NewSweeper()
		v := 0
		for pb.Next() {
			_ = s.CanonicalBall(g, rank, v, 2, in)
			v = (v + 1) % g.N()
		}
	})
}

// --- round engine (model.Engine) ---

// benchPulse is the steady-state round workload: every node
// broadcasts a pre-boxed payload on all its letters each round, for a
// caller-chosen number of rounds. One benchmark op is ONE ROUND: the
// whole measured region is a single engine run of b.N rounds, so
// per-run setup (Init, worker spawn) amortises to zero and allocs/op
// is the genuine steady-state per-round allocation count.
type benchPulse struct {
	letters []view.Letter
	left    int
}

// benchPulseAlgo is the engine-native form: states are pre-allocated
// and handed out by the sequential Init; Step sends its own state
// pointer, so a steady-state round performs no allocation at all.
func benchPulseAlgo(states []benchPulse, rounds int) model.EngineAlgo {
	next := 0
	return model.EngineAlgo{
		Init: func(info model.NodeInfo) any {
			s := &states[next]
			next++
			s.letters = info.Letters
			s.left = rounds
			return s
		},
		Step: func(state any, round int, inbox []model.Msg, out *model.Outbox) (any, bool) {
			s := state.(*benchPulse)
			if s.left == 0 {
				return s, true
			}
			s.left--
			for _, l := range s.letters {
				out.Send(l, s)
			}
			return s, false
		},
		Out: func(any) model.Output { return model.Output{} },
	}
}

// benchPulseRoundAlgo is the identical workload in the classical
// slice-returning form, for the retained reference loop.
func benchPulseRoundAlgo(states []benchPulse, rounds int) model.RoundAlgo {
	next := 0
	return model.RoundAlgo{
		Init: func(info model.NodeInfo) any {
			s := &states[next]
			next++
			s.letters = info.Letters
			s.left = rounds
			return s
		},
		Step: func(state any, round int, inbox []model.Msg) (any, []model.Msg, bool) {
			s := state.(*benchPulse)
			if s.left == 0 {
				return s, nil, true
			}
			s.left--
			out := make([]model.Msg, 0, len(s.letters))
			for _, l := range s.letters {
				out = append(out, model.Msg{L: l, Data: s})
			}
			return s, out, false
		},
		Out: func(any) model.Output { return model.Output{} },
	}
}

// benchTorusEngine caches the 4096-node torus host and its engine
// across the benchmark's calibration calls.
var benchTorusEngine struct {
	sync.Once
	h      *model.Host
	e      *model.Engine
	states []benchPulse
}

func torusEngine() (*model.Host, *model.Engine, []benchPulse) {
	benchTorusEngine.Do(func() {
		benchTorusEngine.h = model.HostFromGraph(graph.Torus(64, 64))
		benchTorusEngine.e = model.NewEngine(benchTorusEngine.h)
		benchTorusEngine.states = make([]benchPulse, 4096)
	})
	return benchTorusEngine.h, benchTorusEngine.e, benchTorusEngine.states
}

func BenchmarkRunRounds(b *testing.B) {
	// The engine on the 4096-node torus at parallelism 8, measured per
	// round. CI-gated against BENCH_ci.json in ns/op and allocs/op:
	// steady-state rounds must stay at 0 allocs/op. par.Set(8) fixes
	// the worker count whatever the runner's core count; on smaller
	// machines the workers timeshare, which only makes the measured
	// ns/op conservative.
	defer par.Set(par.Set(8))
	_, e, states := torusEngine()
	if _, _, err := e.RunStates(nil, benchPulseAlgo(states, 4), 8); err != nil {
		b.Fatal(err) // warm-up: arenas, letter slices, worklists
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := e.RunStates(nil, benchPulseAlgo(states, b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRunRoundsFaulty(b *testing.B) {
	// The identical 4096-node torus workload through the faulty step
	// path under lossy:p=0.05 — prices the per-slot fate draws and the
	// dense-inbox recompaction relative to BenchmarkRunRounds.
	// CI-gated against BENCH_ci.json: fates are pure functions of
	// (seed, round, slot), so after the warm-up run sizes the fault
	// arena a steady-state round stays at 0 allocs/op.
	defer par.Set(par.Set(8))
	h, e, states := torusEngine()
	sched := model.MustParseProfile("lossy:p=0.05").New(h, 11)
	if _, _, _, err := e.RunStatesFaulty(nil, benchPulseAlgo(states, 4), 8, sched); err != nil {
		b.Fatal(err) // warm-up: fault arena, crashed bitmap
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, _, err := e.RunStatesFaulty(nil, benchPulseAlgo(states, b.N), b.N+2, sched); err != nil {
		b.Fatal(err)
	}
}

// benchPulseWordAlgo is benchPulse on the typed word lane: the
// remaining-round counter IS the uint64 state, and the per-round
// broadcast is one word written across the slot row — the same
// message traffic as benchPulseAlgo with the boxing gone.
func benchPulseWordAlgo(rounds int) model.WordAlgo {
	return model.WordAlgo{
		Init: func(v int, info model.NodeInfo) uint64 { return uint64(rounds) },
		Step: func(state *uint64, round int, inbox []model.WordMsg, out *model.Outbox) bool {
			if *state == 0 {
				return true
			}
			*state--
			out.BroadcastWord(*state)
			return false
		},
		Out: func(*uint64) model.Output { return model.Output{} },
	}
}

// benchTorusWordEngine caches the typed twin of benchTorusEngine,
// sharing nothing with it so the two benchmarks never warm each
// other's arenas.
var benchTorusWordEngine struct {
	sync.Once
	h *model.Host
	e *model.WordEngine
}

func torusWordEngine() (*model.Host, *model.WordEngine) {
	benchTorusWordEngine.Do(func() {
		benchTorusWordEngine.h = model.HostFromGraph(graph.Torus(64, 64))
		benchTorusWordEngine.e = model.NewWordEngine(benchTorusWordEngine.h)
	})
	return benchTorusWordEngine.h, benchTorusWordEngine.e
}

func BenchmarkRunRoundsTyped(b *testing.B) {
	// BenchmarkRunRounds through the typed word lane: same 4096-node
	// torus, same parallelism 8, same per-round message traffic, with
	// states and payloads in contiguous uint64 columns instead of
	// boxed interfaces. CI-gated against BENCH_ci.json in ns/op and
	// allocs/op (steady-state rounds must stay at 0 allocs/op); the
	// ratio to BenchmarkRunRounds is the typed plane's speedup,
	// recorded in BENCH_pr7.json.
	defer par.Set(par.Set(8))
	_, e := torusWordEngine()
	if _, _, err := e.RunStates(nil, benchPulseWordAlgo(4), 8); err != nil {
		b.Fatal(err) // warm-up: arenas, word lane, worklists
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := e.RunStates(nil, benchPulseWordAlgo(b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRunRoundsTypedFaulty(b *testing.B) {
	// The typed workload through the faulty step path under the same
	// lossy:p=0.05 schedule as BenchmarkRunRoundsFaulty — prices the
	// per-slot fate draws on the word lane. CI-gated: steady-state
	// faulty typed rounds must stay at 0 allocs/op.
	defer par.Set(par.Set(8))
	h, e := torusWordEngine()
	sched := model.MustParseProfile("lossy:p=0.05").New(h, 11)
	if _, _, _, err := e.RunStatesFaulty(nil, benchPulseWordAlgo(4), 8, sched); err != nil {
		b.Fatal(err) // warm-up: fault scratch, crashed bitmap
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, _, err := e.RunStatesFaulty(nil, benchPulseWordAlgo(b.N), b.N+2, sched); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRunRoundsCheckpointIdle(b *testing.B) {
	// BenchmarkRunRoundsTyped with a Checkpointer armed whose cadence
	// never fires: the price of durability when idle, CI-gated against
	// BENCH_ci.json at 0 allocs/op — arming checkpoints must cost a
	// steady-state round nothing but one nil/int check per barrier.
	defer par.Set(par.Set(8))
	_, e := torusWordEngine()
	e.WithCheckpoints(&model.Checkpointer{Every: 1 << 30})
	defer e.WithCheckpoints(nil)
	if _, _, err := e.RunStates(nil, benchPulseWordAlgo(4), 8); err != nil {
		b.Fatal(err) // warm-up: arenas, word lane, worklists
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := e.RunStates(nil, benchPulseWordAlgo(b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	// One full durability cycle on the 4096-node torus: decode an
	// encoded snapshot taken two rounds before the end of a 32-round
	// typed run, restore it into a warmed engine and run to
	// completion. Prices what a crash-recovery actually pays per
	// resumed job (decode + column restore + plane restore + the
	// remaining rounds). CI-gated against BENCH_ci.json.
	defer par.Set(par.Set(8))
	_, e := torusWordEngine()
	var payload []byte
	ck := &model.Checkpointer{Every: 30, Sink: func(s *model.Snapshot) error {
		payload = s.Encode()
		return nil
	}}
	e.WithCheckpoints(ck)
	if _, _, err := e.RunStates(nil, benchPulseWordAlgo(32), 40); err != nil {
		b.Fatal(err)
	}
	e.WithCheckpoints(nil)
	if payload == nil {
		b.Fatal("no checkpoint captured")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := model.DecodeSnapshot(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.Resume(snap).RunStates(nil, benchPulseWordAlgo(32), 40); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPulseShardedAlgo is benchPulseWordAlgo in the sharded form:
// the same countdown broadcast through the shared WordSender surface.
func benchPulseShardedAlgo(rounds int) model.ShardedWordAlgo {
	return model.ShardedWordAlgo{
		Init: func(v int64, info model.NodeInfo) uint64 { return uint64(rounds) },
		Step: func(state *uint64, round int, inbox []model.WordMsg, out model.WordSender) bool {
			if *state == 0 {
				return true
			}
			*state--
			out.BroadcastWord(*state)
			return false
		},
		Out: func(*uint64) model.Output { return model.Output{} },
	}
}

// benchShardedEngines caches the sharded engines across calibration
// calls: the 4096-node torus at P=4 (local-heavy traffic) and a
// 4096-node shift-regular circulant at P=8 whose seeded long-range
// shifts make most arcs cross shard boundaries (exchange-heavy).
var benchShardedEngines struct {
	sync.Once
	torus *model.ShardedEngine
	shift *model.ShardedEngine
}

func shardedBenchEngines(b *testing.B) (*model.ShardedEngine, *model.ShardedEngine) {
	benchShardedEngines.Do(func() {
		t, err := model.NewShardedEngine(model.SourceOf(model.HostFromGraph(graph.Torus(64, 64))), 4)
		if err != nil {
			panic(err)
		}
		src, err := host.ParseShard("shift-regular:d=8,n=4096,seed=1")
		if err != nil {
			panic(err)
		}
		s, err := model.NewShardedEngine(src, 8)
		if err != nil {
			panic(err)
		}
		benchShardedEngines.torus, benchShardedEngines.shift = t, s
	})
	return benchShardedEngines.torus, benchShardedEngines.shift
}

func BenchmarkShardedRound(b *testing.B) {
	// BenchmarkRunRoundsTyped through the sharded engine: the same
	// 4096-node torus workload at P=4, parallelism 8. Workers, arenas
	// and the exchange staging are per-run persistent, so after the
	// warm-up a steady-state round is two barrier phases and zero
	// allocations — CI-gated against BENCH_ci.json in ns/op and
	// allocs/op; the ratio to BenchmarkRunRoundsTyped is the sharding
	// overhead on local-heavy traffic, recorded in BENCH_pr10.json.
	defer par.Set(par.Set(8))
	se, _ := shardedBenchEngines(b)
	if _, err := se.Run(nil, benchPulseShardedAlgo(4), 8); err != nil {
		b.Fatal(err) // warm-up: arenas, exchange staging, worklists
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := se.Run(nil, benchPulseShardedAlgo(b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkShardedExchange(b *testing.B) {
	// The exchange-heavy twin: 4096 nodes, degree 8, seeded long-range
	// shifts at P=8, so most slots route through the cross-shard
	// staging buffers and the round barrier's drain phase dominates.
	// CI-gated against BENCH_ci.json — prices the counting-sorted
	// exchange drain per round, also at 0 allocs/op steady state.
	defer par.Set(par.Set(8))
	_, se := shardedBenchEngines(b)
	if _, err := se.Run(nil, benchPulseShardedAlgo(4), 8); err != nil {
		b.Fatal(err) // warm-up: arenas, exchange staging, worklists
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := se.Run(nil, benchPulseShardedAlgo(b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRunRoundsReference(b *testing.B) {
	// The identical per-round workload through the retained reference
	// loop (append-built [][]Msg inboxes, every node visited every
	// round) — the denominator of the engine's speedup, recorded in
	// BENCH_pr5.json.
	defer par.Set(par.Set(8))
	h, _, states := torusEngine()
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := model.RunRoundsReference(h, nil, benchPulseRoundAlgo(states, b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

// benchMillionEngine caches the 10^6-node cycle engine (the E16-scale
// message plane) across calibration calls, including one persistent
// algo value whose closures never reallocate between runs.
var benchMillionEngine struct {
	sync.Once
	e      *model.Engine
	states []benchPulse
	algo   model.EngineAlgo
	next   int
	rounds int
}

func BenchmarkEngineMillionCycle(b *testing.B) {
	// One round on a million-node cycle: the scale assertion of the
	// operational layer. After the warm-up run the arena is sized and
	// every state exists, so steady-state rounds report 0 allocs/op.
	m := &benchMillionEngine
	m.Do(func() {
		h := model.HostFromGraph(graph.Cycle(1_000_000))
		m.e = model.NewEngine(h)
		m.states = make([]benchPulse, 1_000_000)
		m.algo = model.EngineAlgo{
			Init: func(info model.NodeInfo) any {
				s := &m.states[m.next]
				m.next++
				s.letters = info.Letters
				s.left = m.rounds
				return s
			},
			Step: func(state any, round int, inbox []model.Msg, out *model.Outbox) (any, bool) {
				s := state.(*benchPulse)
				if s.left == 0 {
					return s, true
				}
				s.left--
				for _, l := range s.letters {
					out.Send(l, s)
				}
				return s, false
			},
			Out: func(any) model.Output { return model.Output{} },
		}
	})
	m.next, m.rounds = 0, 2
	if _, _, err := m.e.RunStates(nil, m.algo, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	m.next, m.rounds = 0, b.N
	if _, _, err := m.e.RunStates(nil, m.algo, b.N+2); err != nil {
		b.Fatal(err)
	}
}

// benchMillionWordEngine caches the typed 10^6-node cycle engine.
var benchMillionWordEngine struct {
	sync.Once
	e *model.WordEngine
}

func BenchmarkEngineMillionCycleTyped(b *testing.B) {
	// BenchmarkEngineMillionCycle on the typed word lane: a million
	// uint64 states in one column and one word per slot, against a
	// million boxed *benchPulse states and interface payloads on the
	// untyped plane — the B/op and ns/op gap is the columnar layout's
	// win at scale. CI-gated against BENCH_ci.json.
	m := &benchMillionWordEngine
	m.Do(func() {
		m.e = model.NewWordEngine(model.HostFromGraph(graph.Cycle(1_000_000)))
	})
	if _, _, err := m.e.RunStates(nil, benchPulseWordAlgo(2), 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := m.e.RunStates(nil, benchPulseWordAlgo(b.N), b.N+2); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkHomogeneitySample(b *testing.B) {
	c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HomogeneitySample(20, 10, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveMinVC(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomRegular(18, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = solve.MinVertexCoverSize(g)
	}
}

func BenchmarkSolveMinEDS(b *testing.B) {
	g := graph.Circulant(13, 1, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = solve.MinEdgeDominatingSetSize(g)
	}
}

func BenchmarkCertifyEDSBound(b *testing.B) {
	bl := digraph.NewBuilder(12, 1)
	for i := 0; i < 12; i++ {
		bl.MustAddArc(i, (i+1)%12, 0)
	}
	h, err := model.NewHost(bl.Build())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CertifyPOLowerBound(h, problems.MinEdgeDominatingSet{}, 1, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPOEDSCycle60(b *testing.B) {
	bl := digraph.NewBuilder(60, 1)
	for i := 0; i < 60; i++ {
		bl.MustAddArc(i, (i+1)%60, 0)
	}
	h, err := model.NewHost(bl.Build())
	if err != nil {
		b.Fatal(err)
	}
	alg := algorithms.EDSOneOut()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.RunPO(h, alg, model.EdgeKind); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColeVishkin1024(b *testing.B) {
	bl := digraph.NewBuilder(1024, 1)
	for i := 0; i < 1024; i++ {
		bl.MustAddArc(i, (i+1)%1024, 0)
	}
	h, err := model.NewHost(bl.Build())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	ids := rng.Perm(8192)[:1024]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.ColeVishkinMIS(h, ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildHomogeneousLift(b *testing.B) {
	c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	if c.Level > 2 {
		b.Skip("construction level too large")
	}
	bl := digraph.NewBuilder(9, 1)
	for i := 0; i < 9; i++ {
		bl.MustAddArc(i, (i+1)%9, 0)
	}
	base := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildHomogeneousLift(c, base, 4, 1<<17); err != nil {
			b.Fatal(err)
		}
	}
}
