#!/usr/bin/env python3
"""Benchmark baseline recorder / regression gate for CI.

Modes:

  record  <bench-output> <out.json>
      Parse `go test -bench` output (possibly -count repeated) and
      write {"benchmarks": {name: {"ns_op": min, "B_op":, "allocs_op":}}}.

  check   <bench-output> <baseline.json> [--threshold 0.25]
      Compare the run against the committed baseline. Raw ns/op is
      hardware-dependent, so each watched benchmark's ratio is
      normalised by the median ratio across *all* shared benchmarks
      (the calibration set cancels uniform machine-speed differences).
      For the watched benchmarks allocs/op is also compared raw: an
      alloc count growing by more than the threshold fails (a
      zero-alloc baseline therefore tolerates no allocation at all —
      this is how the sweep engine's 0 allocs/op promise is pinned,
      for the serial hit path and the lock-free parallel hit path
      alike).
      Watched benchmarks must not scale with the runner's core count:
      most are serial (BenchmarkSweepMeasure and SweepMeasureAll pin
      par.Set(1) themselves), and BenchmarkCanonicalBallParallel pins
      GOMAXPROCS so its goroutine count is fixed — on runners with
      fewer cores its goroutines timeshare, which can only make the
      measured ns/op worse than the baseline machine's, never
      spuriously better, so the gate stays sound (merely
      conservative). Exit 1 on any regression.

Watched benchmarks (the CSR/interner/sweep/round-engine hot paths the
repo promises not to regress): ViewEncode, CanonicalBall,
CanonicalBallParallel, SweepMeasure, SweepMeasureAll, E14Views,
RunRounds (the message-plane engine: one steady-state round on the
4096-node torus at parallelism 8 — its 0 allocs/op baseline pins the
zero-allocation round promise; par.Set(8) fixes the worker count, so
on smaller runners the workers timeshare and the measured ns/op can
only be conservative), RunRoundsFaulty (the same round under the
lossy:p=0.05 fault schedule — pins both the faulty path's overhead
and its own 0 allocs/op steady state), RunRoundsTyped and
RunRoundsTypedFaulty (the typed word-lane engine on the same torus:
the uint64 columnar path must hold its speedup over the boxed plane
and its 0 allocs/op steady state, clean and faulty alike), and
EngineMillionCycleTyped (the typed million-node round: pins the word
lane's per-round cost at memory-bound scale; its allocs_op baseline is
null on purpose — the benchmark amortises one run's setup over b.N
rounds, so the per-op alloc count varies with the runner's speed and
only the normalised ns/op is gated), ServeCachedRequest (the
localapproxd end-to-end handler path on a warm cache entry: routing,
query parse, canonical key, FNV hash, lock-free probe, response write
— its 0 allocs/op baseline pins the service's repeat-request promise),
and ShardedRound / ShardedExchange (the sharded engine's steady-state
round at 0 allocs/op: the torus at P=4 prices the two-phase barrier on
local-heavy traffic, the long-shift circulant at P=8 prices the
counting-sorted cross-shard exchange drain).
"""
import json
import re
import statistics
import sys

WATCHED = [
    "BenchmarkViewEncode",
    "BenchmarkCanonicalBall",
    "BenchmarkCanonicalBallParallel",
    "BenchmarkSweepMeasure",
    "BenchmarkSweepMeasureAll",
    "BenchmarkE14Views",
    "BenchmarkRunRounds",
    "BenchmarkRunRoundsFaulty",
    "BenchmarkRunRoundsTyped",
    "BenchmarkRunRoundsTypedFaulty",
    "BenchmarkRunRoundsCheckpointIdle",
    "BenchmarkSnapshotRestore",
    "BenchmarkEngineMillionCycleTyped",
    "BenchmarkServeCachedRequest",
    "BenchmarkShardedRound",
    "BenchmarkShardedExchange",
]

LINE = re.compile(
    r"(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+(\d+) B/op\s+(\d+) allocs/op)?"
)


def parse(path):
    """Parse bench output; repeated -count lines keep the minimum ns/op."""
    rows = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if not m:
                continue
            name = m.group(1)
            ns = float(m.group(3))
            row = rows.setdefault(
                name,
                {
                    "ns_op": ns,
                    "B_op": int(m.group(4)) if m.group(4) else None,
                    "allocs_op": int(m.group(5)) if m.group(5) else None,
                },
            )
            row["ns_op"] = min(row["ns_op"], ns)
    return rows


def record(bench_path, out_path):
    rows = parse(bench_path)
    if not rows:
        sys.exit(f"benchdelta: no benchmark lines in {bench_path}")
    json.dump({"benchmarks": rows}, open(out_path, "w"), indent=2)
    print(f"benchdelta: recorded {len(rows)} benchmarks to {out_path}")


def check(bench_path, baseline_path, threshold):
    cur = parse(bench_path)
    base = json.load(open(baseline_path))["benchmarks"]
    shared = sorted(set(cur) & set(base))
    if not shared:
        sys.exit("benchdelta: no shared benchmarks between run and baseline")
    ratios = {n: cur[n]["ns_op"] / base[n]["ns_op"] for n in shared}
    machine = statistics.median(ratios.values())
    print(f"benchdelta: {len(shared)} shared benchmarks, machine factor {machine:.3f}")
    failed = []
    for name in WATCHED:
        if name not in ratios:
            print(f"benchdelta: WARNING watched {name} missing from run or baseline")
            continue
        norm = ratios[name] / machine
        status = "ok"
        if norm > 1 + threshold:
            status = "REGRESSION"
            failed.append(name)
        print(
            f"  {name}: {base[name]['ns_op']:.0f} -> {cur[name]['ns_op']:.0f} ns/op"
            f" (normalised x{norm:.3f}) {status}"
        )
        base_a = base[name].get("allocs_op")
        cur_a = cur[name].get("allocs_op")
        if base_a is None or cur_a is None:
            continue
        # allocs/op is deterministic (watched benchmarks are serial):
        # no machine normalisation. A baseline of 0 tolerates no
        # allocation at all.
        astatus = "ok"
        if cur_a > base_a * (1 + threshold) and cur_a > base_a:
            astatus = "ALLOC REGRESSION"
            failed.append(name + " (allocs)")
        print(f"  {name}: {base_a} -> {cur_a} allocs/op {astatus}")
    if failed:
        sys.exit(
            f"benchdelta: regression above {threshold:.0%} in: "
            + ", ".join(failed)
        )
    print("benchdelta: within budget")


def main():
    args = sys.argv[1:]
    if len(args) >= 3 and args[0] == "record":
        record(args[1], args[2])
    elif len(args) >= 3 and args[0] == "check":
        threshold = 0.25
        if "--threshold" in args:
            threshold = float(args[args.index("--threshold") + 1])
        check(args[1], args[2], threshold)
    else:
        sys.exit(__doc__)


if __name__ == "__main__":
    main()
