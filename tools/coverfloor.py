#!/usr/bin/env python3
"""Per-package coverage floor gate for CI.

Usage:

  coverfloor.py <go-test-cover-output> <pkg>=<floor> [<pkg>=<floor> ...]

Parses `go test -cover ./...` output lines like

  ok  repro/internal/model  0.042s  coverage: 90.3% of statements

and fails (exit 1) when a floored package's coverage falls below its
floor, or when a floored package is missing from the output (a deleted
or skipped test suite must not silently pass the gate). Packages
without a floor are reported but never gate.

The floors are set just below the measured post-PR coverage of the
packages whose tests the repo explicitly promises to keep (the intern
shard and the model layer with its round engine), so a PR that drops
their tests or strands dead code regresses loudly.
"""
import re
import sys

LINE = re.compile(r"^ok\s+(\S+)\s+.*coverage:\s+([\d.]+)% of statements")


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    path, floors = sys.argv[1], {}
    for spec in sys.argv[2:]:
        pkg, _, floor = spec.partition("=")
        if not floor:
            sys.exit(f"coverfloor: malformed floor {spec!r} (want pkg=percent)")
        floors[pkg] = float(floor)

    measured = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if m:
                measured[m.group(1)] = float(m.group(2))

    failed = False
    for pkg, floor in sorted(floors.items()):
        got = measured.get(pkg)
        if got is None:
            print(f"coverfloor: FAIL {pkg}: no coverage line in {path}")
            failed = True
        elif got < floor:
            print(f"coverfloor: FAIL {pkg}: {got:.1f}% below floor {floor:.1f}%")
            failed = True
        else:
            print(f"coverfloor: ok {pkg}: {got:.1f}% (floor {floor:.1f}%)")
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
